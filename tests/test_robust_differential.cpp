// Fault-injection differential tests for the recovering socket_scheduled
// overload. Each fault class the injector models — refused connections,
// mid-transfer resets, stalls, short writes — is driven through a real
// loopback redistribution, and the run must still end verified with the
// exact byte total within the attempt budget. Injection decisions are
// deterministic per (seed, op index) but thread interleaving picks which
// transfer an op index lands on, so the assertions are recovery
// invariants, not "which transfer was hit" (see robust/fault_injector.hpp).
#include "mpilite/redistribute.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "common/rng.hpp"
#include "kpbs/solver.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "robust/fault_injector.hpp"
#include "workload/uniform_traffic.hpp"

namespace redist {
namespace {

SocketClusterConfig test_cluster() {
  SocketClusterConfig config;
  config.card_out_bps = 3e6;
  config.card_in_bps = 3e6;
  config.backbone_bps = 6e6;
  config.chunk_bytes = 4096;
  config.burst_bytes = 8192;
  return config;
}

struct Instance {
  TrafficMatrix traffic{1, 1};  // placeholder, overwritten below
  Schedule schedule;
  double bpu = 8000.0;
};

Instance test_instance(std::uint64_t seed) {
  Instance instance;
  Rng rng(seed);
  instance.traffic = uniform_all_pairs_traffic(rng, 3, 3, 5000, 20000);
  const BipartiteGraph g = instance.traffic.to_graph(instance.bpu);
  instance.schedule = solve_kpbs(g, {2, 1, Algorithm::kOGGP}).schedule;
  return instance;
}

/// Robustness options tuned for tests: short deadlines and millisecond
/// backoffs so a failed attempt unwinds quickly.
RobustnessOptions fast_robustness() {
  RobustnessOptions r;
  r.enabled = true;
  r.io_timeout_ms = 500;
  r.max_reschedules = 3;
  r.resolve = SolverOptions{2, 1, Algorithm::kOGGP, MatchingEngine::kWarm};
  r.connect_retry.base_delay_ms = 1;
  r.connect_retry.max_delay_ms = 4;
  r.attempt_backoff.base_delay_ms = 1;
  r.attempt_backoff.max_delay_ms = 4;
  return r;
}

TEST(RobustDifferential, DisabledOptionsRunTheLegacyPath) {
  const Instance in = test_instance(72);
  const SocketRunResult legacy =
      socket_scheduled(test_cluster(), in.traffic, in.schedule, in.bpu);
  const SocketRunResult robust = socket_scheduled(
      test_cluster(), in.traffic, in.schedule, in.bpu, RobustnessOptions{});
  EXPECT_TRUE(legacy.verified);
  EXPECT_TRUE(robust.verified);
  EXPECT_EQ(robust.bytes_delivered, legacy.bytes_delivered);
  EXPECT_EQ(robust.steps, legacy.steps);
  EXPECT_EQ(robust.attempts, 1);
  EXPECT_EQ(robust.reschedules, 0);
  EXPECT_EQ(robust.link_retries, 0u);
}

TEST(RobustDifferential, InjectionOffMatchesLegacyInOneAttempt) {
  const Instance in = test_instance(73);
  const SocketRunResult legacy =
      socket_scheduled(test_cluster(), in.traffic, in.schedule, in.bpu);
  const SocketRunResult robust = socket_scheduled(
      test_cluster(), in.traffic, in.schedule, in.bpu, fast_robustness());
  EXPECT_TRUE(robust.verified);
  EXPECT_EQ(robust.bytes_delivered, in.traffic.total());
  EXPECT_EQ(robust.bytes_delivered, legacy.bytes_delivered);
  EXPECT_EQ(robust.steps, legacy.steps);
  EXPECT_EQ(robust.attempts, 1);
  EXPECT_EQ(robust.reschedules, 0);
  EXPECT_EQ(robust.link_retries, 0u);
}

TEST(RobustDifferential, RecoversFromInjectedConnectRefusals) {
  const Instance in = test_instance(74);
  robust::FaultInjector injector(101);
  robust::FaultRule rule;
  rule.kind = robust::FaultKind::kConnectRefuse;
  rule.site = robust::FaultSite::kConnect;
  rule.count = 3;
  injector.add_rule(rule);
  const robust::ScopedFaultInjection scope(&injector);
  const SocketRunResult r = socket_scheduled(
      test_cluster(), in.traffic, in.schedule, in.bpu, fast_robustness());
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.bytes_delivered, in.traffic.total());
  // Refusals are absorbed by connect retries during wiring, not by a
  // whole-run reschedule.
  EXPECT_EQ(r.attempts, 1);
  EXPECT_GE(r.link_retries, 1u);
  EXPECT_EQ(injector.injected_count(), 3u);
}

TEST(RobustDifferential, RecoversFromMidTransferReset) {
  const Instance in = test_instance(75);
  robust::FaultInjector injector(202);
  robust::FaultRule rule;
  rule.kind = robust::FaultKind::kReset;
  rule.site = robust::FaultSite::kSend;
  rule.begin = 60;  // past the 15 wiring handshakes, into the data phase
  rule.at_bytes = 2000;
  injector.add_rule(rule);
  const robust::ScopedFaultInjection scope(&injector);
  const RobustnessOptions robustness = fast_robustness();
  const SocketRunResult r = socket_scheduled(test_cluster(), in.traffic,
                                             in.schedule, in.bpu, robustness);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.bytes_delivered, in.traffic.total());
  EXPECT_LE(r.attempts, 1 + robustness.max_reschedules);
  EXPECT_EQ(injector.injected_count(), 1u);
}

TEST(RobustDifferential, RecoversFromInjectedStall) {
  const Instance in = test_instance(76);
  robust::FaultInjector injector(303);
  robust::FaultRule rule;
  rule.kind = robust::FaultKind::kStall;
  rule.site = robust::FaultSite::kRecv;
  rule.begin = 60;
  rule.stall_ms = 1500;  // longer than the armed 500 ms idle deadline
  injector.add_rule(rule);
  const robust::ScopedFaultInjection scope(&injector);
  const RobustnessOptions robustness = fast_robustness();
  const SocketRunResult r = socket_scheduled(test_cluster(), in.traffic,
                                             in.schedule, in.bpu, robustness);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.bytes_delivered, in.traffic.total());
  EXPECT_LE(r.attempts, 1 + robustness.max_reschedules);
}

TEST(RobustDifferential, ShortWritesDeliverIntactInOneAttempt) {
  const Instance in = test_instance(77);
  robust::FaultInjector injector(404);
  robust::FaultRule rule;
  rule.kind = robust::FaultKind::kShortWrite;
  rule.site = robust::FaultSite::kSend;
  rule.count = 1u << 20;  // cap every send for the whole run
  rule.chunk_cap = 7;
  injector.add_rule(rule);
  const robust::ScopedFaultInjection scope(&injector);
  const SocketRunResult r = socket_scheduled(
      test_cluster(), in.traffic, in.schedule, in.bpu, fast_robustness());
  // Short writes exercise the send/recv loops but are not a failure: the
  // run must finish verified on the first attempt.
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.bytes_delivered, in.traffic.total());
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.reschedules, 0);
  EXPECT_GT(injector.injected_count(), 0u);
}

// The flight recorder joins the whole robust run on one solve ID: attempt
// seams, injected faults and (when an attempt fails) the spliced recovery
// all carry SocketRunResult::run_id, and a recovery leaves a forensic
// JSONL dump in RobustnessOptions::journal_dir.
TEST(RobustDifferential, JournalJoinsRobustRunBySolveIdAndDumpsRecovery) {
  const Instance in = test_instance(75);
  robust::FaultInjector injector(202);
  robust::FaultRule rule;
  rule.kind = robust::FaultKind::kReset;
  rule.site = robust::FaultSite::kSend;
  rule.begin = 60;
  rule.at_bytes = 2000;
  injector.add_rule(rule);
  const robust::ScopedFaultInjection scope(&injector);

  obs::Journal journal(8192);
  const obs::ScopedJournal scoped_journal(&journal);
  RobustnessOptions robustness = fast_robustness();
  robustness.journal_dir = ::testing::TempDir();
  const SocketRunResult r = socket_scheduled(test_cluster(), in.traffic,
                                             in.schedule, in.bpu, robustness);
  ASSERT_TRUE(r.verified);
  ASSERT_GT(r.run_id, 0u);

  int attempt_begins = 0;
  int attempt_ends = 0;
  int splices = 0;
  for (const obs::JournalEvent& e : journal.snapshot()) {
    if (e.solve_id != r.run_id) continue;
    if (e.kind == obs::JournalEventKind::kAttemptBegin) ++attempt_begins;
    if (e.kind == obs::JournalEventKind::kAttemptEnd) ++attempt_ends;
    if (e.kind == obs::JournalEventKind::kRecoverySpliced) ++splices;
  }
  EXPECT_EQ(attempt_begins, r.attempts);
  EXPECT_EQ(attempt_ends, r.attempts);
  EXPECT_EQ(splices, r.reschedules);

  if (r.reschedules > 0) {
    // Every spliced recovery leaves a forensic artifact.
    ASSERT_FALSE(r.journal_dump_path.empty());
    std::ifstream dump(r.journal_dump_path);
    ASSERT_TRUE(dump.good()) << r.journal_dump_path;
    std::string line;
    ASSERT_TRUE(std::getline(dump, line));
    EXPECT_NE(line.find("\"schema\":\"redist.journal.v1\""),
              std::string::npos);
    bool saw_splice = false;
    while (std::getline(dump, line)) {
      if (line.find("\"kind\":\"recovery_spliced\"") != std::string::npos) {
        saw_splice = true;
      }
    }
    EXPECT_TRUE(saw_splice);
  } else {
    EXPECT_TRUE(r.journal_dump_path.empty());
  }
}

TEST(RobustDifferential, RobustCountersReachTheMetricsRegistry) {
  const Instance in = test_instance(78);
  obs::MetricsRegistry registry;
  const obs::ScopedTelemetry scope(&registry, nullptr);
  const SocketRunResult r = socket_scheduled(
      test_cluster(), in.traffic, in.schedule, in.bpu, fast_robustness());
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(registry.counter("robust.run.count").value(), 1u);
  EXPECT_EQ(registry.counter("robust.run.attempts").value(), 1u);
  EXPECT_EQ(registry.counter("robust.run.delivered_bytes").value(),
            static_cast<std::uint64_t>(in.traffic.total()));
}

}  // namespace
}  // namespace redist
