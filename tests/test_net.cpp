#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "net/message.hpp"
#include "net/socket.hpp"
#include "common/stopwatch.hpp"
#include "runtime/token_bucket.hpp"

namespace redist {
namespace {

TEST(Socket, ListenerGetsEphemeralPort) {
  const TcpListener listener = TcpListener::bind_loopback();
  EXPECT_GT(listener.port(), 0);
}

TEST(Socket, TwoListenersGetDistinctPorts) {
  const TcpListener a = TcpListener::bind_loopback();
  const TcpListener b = TcpListener::bind_loopback();
  EXPECT_NE(a.port(), b.port());
}

TEST(Socket, RoundTripBytes) {
  TcpListener listener = TcpListener::bind_loopback();
  std::thread server([&listener]() {
    TcpStream peer = listener.accept();
    char buf[5];
    peer.recv_all(buf, 5);
    peer.send_all(buf, 5);  // echo
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  client.send_all("hello", 5);
  char echo[5];
  client.recv_all(echo, 5);
  server.join();
  EXPECT_EQ(std::memcmp(echo, "hello", 5), 0);
}

TEST(Socket, ConnectToClosedPortThrows) {
  // Bind-and-drop gives a port that is (almost certainly) not listening.
  std::uint16_t dead_port;
  {
    const TcpListener listener = TcpListener::bind_loopback();
    dead_port = listener.port();
  }
  EXPECT_THROW(TcpStream::connect_loopback(dead_port), Error);
}

TEST(Socket, RecvOnPeerCloseThrows) {
  TcpListener listener = TcpListener::bind_loopback();
  std::thread server([&listener]() {
    TcpStream peer = listener.accept();
    // Destructor closes immediately.
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  server.join();
  char buf[1];
  EXPECT_THROW(client.recv_all(buf, 1), Error);
}

TEST(Socket, InvalidStreamOperationsThrow) {
  TcpStream stream;
  char buf[1] = {0};
  EXPECT_THROW(stream.send_all(buf, 1), Error);
  EXPECT_THROW(stream.recv_all(buf, 1), Error);
}

TEST(Message, FramedRoundTrip) {
  TcpListener listener = TcpListener::bind_loopback();
  const std::string text = "framed payload with \0 inside";
  std::thread server([&]() {
    TcpStream peer = listener.accept();
    std::vector<char> payload;
    const std::uint32_t tag = recv_message(peer, payload);
    send_message(peer, tag + 1, payload.data(), payload.size());
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  send_message(client, 42, text.data(), text.size());
  std::vector<char> back;
  recv_message_expect(client, 43, back);
  server.join();
  ASSERT_EQ(back.size(), text.size());
  EXPECT_EQ(std::memcmp(back.data(), text.data(), text.size()), 0);
}

TEST(Message, EmptyPayload) {
  TcpListener listener = TcpListener::bind_loopback();
  std::thread server([&]() {
    TcpStream peer = listener.accept();
    std::vector<char> payload{'x'};  // must be cleared by recv
    EXPECT_EQ(recv_message(peer, payload), 7u);
    EXPECT_TRUE(payload.empty());
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  send_message(client, 7, nullptr, 0);
  server.join();
}

TEST(Message, TagMismatchThrows) {
  TcpListener listener = TcpListener::bind_loopback();
  std::thread server([&]() {
    TcpStream peer = listener.accept();
    send_message(peer, 1, "a", 1);
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  std::vector<char> payload;
  EXPECT_THROW(recv_message_expect(client, 2, payload), Error);
  server.join();
}

TEST(Message, ShapedTransferIsRateLimited) {
  TcpListener listener = TcpListener::bind_loopback();
  const std::size_t bytes = 60000;
  TokenBucket sender_bucket(200e3, 8192);  // 200 KB/s
  std::thread server([&]() {
    TcpStream peer = listener.accept();
    std::vector<char> payload;
    recv_message(peer, payload);
    EXPECT_EQ(payload.size(), bytes);
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  const std::vector<char> payload(bytes, 'r');
  Stopwatch watch;
  send_message(client, 9, payload.data(), payload.size(), {&sender_bucket},
               4096);
  server.join();
  // 60 KB minus one burst at 200 KB/s: at least ~0.2 s.
  EXPECT_GE(watch.elapsed_seconds(), 0.15);
}

}  // namespace
}  // namespace redist
