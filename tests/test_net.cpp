#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "net/message.hpp"
#include "net/socket.hpp"
#include "common/stopwatch.hpp"
#include "robust/fault_injector.hpp"
#include "runtime/token_bucket.hpp"

namespace redist {
namespace {

TEST(Socket, ListenerGetsEphemeralPort) {
  const TcpListener listener = TcpListener::bind_loopback();
  EXPECT_GT(listener.port(), 0);
}

TEST(Socket, TwoListenersGetDistinctPorts) {
  const TcpListener a = TcpListener::bind_loopback();
  const TcpListener b = TcpListener::bind_loopback();
  EXPECT_NE(a.port(), b.port());
}

TEST(Socket, RoundTripBytes) {
  TcpListener listener = TcpListener::bind_loopback();
  std::thread server([&listener]() {
    TcpStream peer = listener.accept();
    char buf[5];
    peer.recv_all(buf, 5);
    peer.send_all(buf, 5);  // echo
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  client.send_all("hello", 5);
  char echo[5];
  client.recv_all(echo, 5);
  server.join();
  EXPECT_EQ(std::memcmp(echo, "hello", 5), 0);
}

TEST(Socket, ConnectToClosedPortThrows) {
  // Bind-and-drop gives a port that is (almost certainly) not listening.
  std::uint16_t dead_port;
  {
    const TcpListener listener = TcpListener::bind_loopback();
    dead_port = listener.port();
  }
  EXPECT_THROW(TcpStream::connect_loopback(dead_port), Error);
}

TEST(Socket, RecvOnPeerCloseThrows) {
  TcpListener listener = TcpListener::bind_loopback();
  std::thread server([&listener]() {
    TcpStream peer = listener.accept();
    // Destructor closes immediately.
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  server.join();
  char buf[1];
  EXPECT_THROW(client.recv_all(buf, 1), Error);
}

TEST(Socket, InvalidStreamOperationsThrow) {
  TcpStream stream;
  char buf[1] = {0};
  EXPECT_THROW(stream.send_all(buf, 1), Error);
  EXPECT_THROW(stream.recv_all(buf, 1), Error);
}

TEST(Message, FramedRoundTrip) {
  TcpListener listener = TcpListener::bind_loopback();
  const std::string text = "framed payload with \0 inside";
  std::thread server([&]() {
    TcpStream peer = listener.accept();
    std::vector<char> payload;
    const std::uint32_t tag = recv_message(peer, payload);
    send_message(peer, tag + 1, payload.data(), payload.size());
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  send_message(client, 42, text.data(), text.size());
  std::vector<char> back;
  recv_message_expect(client, 43, back);
  server.join();
  ASSERT_EQ(back.size(), text.size());
  EXPECT_EQ(std::memcmp(back.data(), text.data(), text.size()), 0);
}

TEST(Message, EmptyPayload) {
  TcpListener listener = TcpListener::bind_loopback();
  std::thread server([&]() {
    TcpStream peer = listener.accept();
    std::vector<char> payload{'x'};  // must be cleared by recv
    EXPECT_EQ(recv_message(peer, payload), 7u);
    EXPECT_TRUE(payload.empty());
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  send_message(client, 7, nullptr, 0);
  server.join();
}

TEST(Message, TagMismatchThrows) {
  TcpListener listener = TcpListener::bind_loopback();
  std::thread server([&]() {
    TcpStream peer = listener.accept();
    send_message(peer, 1, "a", 1);
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  std::vector<char> payload;
  EXPECT_THROW(recv_message_expect(client, 2, payload), Error);
  server.join();
}

TEST(Message, ShapedTransferIsRateLimited) {
  TcpListener listener = TcpListener::bind_loopback();
  const std::size_t bytes = 60000;
  TokenBucket sender_bucket(200e3, 8192);  // 200 KB/s
  std::thread server([&]() {
    TcpStream peer = listener.accept();
    std::vector<char> payload;
    recv_message(peer, payload);
    EXPECT_EQ(payload.size(), bytes);
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  const std::vector<char> payload(bytes, 'r');
  Stopwatch watch;
  send_message(client, 9, payload.data(), payload.size(), {&sender_bucket},
               4096);
  server.join();
  // 60 KB minus one burst at 200 KB/s: at least ~0.2 s.
  EXPECT_GE(watch.elapsed_seconds(), 0.15);
}

TEST(SocketDeadline, RecvTimesOutOnSilentPeer) {
  TcpListener listener = TcpListener::bind_loopback();
  std::thread server([&listener]() {
    // Accept, then never send a byte: the classic stalled peer.
    TcpStream peer = listener.accept();
    char byte = 0;
    try {
      peer.recv_all(&byte, 1);  // unblocks when the client closes
    } catch (const Error&) {
    }
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  client.set_io_timeout_ms(100);
  char buf[1];
  EXPECT_THROW(client.recv_all(buf, 1), TimeoutError);
  client = TcpStream();  // close so the server thread unblocks
  server.join();
}

TEST(SocketDeadline, SendTimesOutOnNonDrainingPeer) {
  TcpListener listener = TcpListener::bind_loopback();
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::thread server([&listener, released]() {
    // Accept and hold the socket open without ever reading.
    TcpStream peer = listener.accept();
    released.wait();
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  client.set_send_buffer(4096);
  client.set_io_timeout_ms(100);
  // Far more than the send buffer plus the peer's receive buffer: once
  // both fill, poll(POLLOUT) must expire instead of blocking forever.
  const std::vector<char> payload(32u << 20, 'x');
  EXPECT_THROW(client.send_all(payload.data(), payload.size()), TimeoutError);
  release.set_value();
  server.join();
}

TEST(SocketDeadline, AcceptTimesOutWithoutClients) {
  TcpListener listener = TcpListener::bind_loopback();
  listener.set_accept_timeout_ms(100);
  EXPECT_THROW(listener.accept(), TimeoutError);
}

TEST(SocketDeadline, ZeroTimeoutKeepsBlockingSemantics) {
  TcpStream stream;
  stream.set_io_timeout_ms(0);
  EXPECT_EQ(stream.io_timeout_ms(), 0);
  stream.set_io_timeout_ms(-5);
  EXPECT_EQ(stream.io_timeout_ms(), -5);  // <= 0 means no deadline
}

TEST(SocketFault, InjectedRefusalFailsConnectThenRecovers) {
  TcpListener listener = TcpListener::bind_loopback();
  robust::FaultInjector injector(9);
  robust::FaultRule rule;
  rule.kind = robust::FaultKind::kConnectRefuse;
  rule.site = robust::FaultSite::kConnect;
  rule.count = 1;
  injector.add_rule(rule);
  const robust::ScopedFaultInjection scope(&injector);
  EXPECT_THROW(TcpStream::connect_loopback(listener.port()), Error);
  // The rule is exhausted; the next dial goes through to the kernel.
  std::thread server([&listener]() { TcpStream peer = listener.accept(); });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  EXPECT_TRUE(client.valid());
  server.join();
  EXPECT_EQ(injector.injected_count(), 1u);
}

TEST(SocketFault, InjectedShortWritesDeliverEveryByte) {
  TcpListener listener = TcpListener::bind_loopback();
  robust::FaultInjector injector(10);
  robust::FaultRule rule;
  rule.kind = robust::FaultKind::kShortWrite;
  rule.site = robust::FaultSite::kSend;
  rule.count = 1000;
  rule.chunk_cap = 3;
  injector.add_rule(rule);
  const robust::ScopedFaultInjection scope(&injector);
  std::vector<char> sent(1000);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<char>(i * 31 + 7);
  }
  std::thread server([&listener, &sent]() {
    TcpStream peer = listener.accept();
    std::vector<char> got(sent.size());
    peer.recv_all(got.data(), got.size());
    EXPECT_EQ(got, sent);
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  client.send_all(sent.data(), sent.size());
  server.join();
  EXPECT_GT(injector.injected_count(), 0u);
}

TEST(SocketFault, InjectedResetThrowsAfterTheConfiguredBytes) {
  TcpListener listener = TcpListener::bind_loopback();
  robust::FaultInjector injector(11);
  robust::FaultRule rule;
  rule.kind = robust::FaultKind::kReset;
  rule.site = robust::FaultSite::kSend;
  rule.at_bytes = 100;
  injector.add_rule(rule);
  const robust::ScopedFaultInjection scope(&injector);
  std::thread server([&listener]() {
    TcpStream peer = listener.accept();
    std::vector<char> got(1000);
    // The sender's socket is shut down after ~100 bytes; the partial read
    // must surface as an error, never as silently short data.
    EXPECT_THROW(peer.recv_all(got.data(), got.size()), Error);
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  const std::vector<char> payload(1000, 'z');
  EXPECT_THROW(client.send_all(payload.data(), payload.size()), Error);
  server.join();
}

TEST(SocketFault, InjectedStallDelaysTheOperation) {
  TcpListener listener = TcpListener::bind_loopback();
  std::thread server([&listener]() {
    TcpStream peer = listener.accept();
    peer.send_all("ping", 4);
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  robust::FaultInjector injector(12);
  robust::FaultRule rule;
  rule.kind = robust::FaultKind::kStall;
  rule.site = robust::FaultSite::kRecv;
  rule.stall_ms = 300;
  injector.add_rule(rule);
  const robust::ScopedFaultInjection scope(&injector);
  char buf[4];
  Stopwatch watch;
  client.recv_all(buf, 4);  // stalled, then completes normally
  EXPECT_GE(watch.elapsed_ms(), 200.0);
  EXPECT_EQ(std::memcmp(buf, "ping", 4), 0);
  server.join();
}

}  // namespace
}  // namespace redist
