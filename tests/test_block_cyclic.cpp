#include "workload/block_cyclic.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "kpbs/solver.hpp"

namespace redist {
namespace {

// O(N) reference implementation.
TrafficMatrix reference(std::int64_t elements, std::int64_t element_bytes,
                        const BlockCyclicLayout& from,
                        const BlockCyclicLayout& to) {
  TrafficMatrix m(from.procs, to.procs);
  for (std::int64_t e = 0; e < elements; ++e) {
    m.add(block_cyclic_owner(from, e), block_cyclic_owner(to, e),
          element_bytes);
  }
  return m;
}

TEST(BlockCyclic, OwnerFormula) {
  const BlockCyclicLayout layout{3, 2};  // cyclic(2) on 3 procs
  EXPECT_EQ(block_cyclic_owner(layout, 0), 0);
  EXPECT_EQ(block_cyclic_owner(layout, 1), 0);
  EXPECT_EQ(block_cyclic_owner(layout, 2), 1);
  EXPECT_EQ(block_cyclic_owner(layout, 5), 2);
  EXPECT_EQ(block_cyclic_owner(layout, 6), 0);  // wraps
}

TEST(BlockCyclic, IdentityRedistributionIsDiagonal) {
  const BlockCyclicLayout layout{4, 3};
  const TrafficMatrix m = block_cyclic_traffic(120, 8, layout, layout);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = 0; j < 4; ++j) {
      if (i == j) {
        EXPECT_EQ(m.at(i, j), 30 * 8);
      } else {
        EXPECT_EQ(m.at(i, j), 0);
      }
    }
  }
}

TEST(BlockCyclic, TotalBytesConserved) {
  const TrafficMatrix m =
      block_cyclic_traffic(1000, 4, BlockCyclicLayout{3, 2},
                           BlockCyclicLayout{5, 3});
  EXPECT_EQ(m.total(), 4000);
}

struct CyclicCase {
  std::int64_t elements;
  BlockCyclicLayout from;
  BlockCyclicLayout to;
};

class BlockCyclicMatchesReference
    : public ::testing::TestWithParam<CyclicCase> {};

TEST_P(BlockCyclicMatchesReference, ExactAgreement) {
  const CyclicCase c = GetParam();
  const TrafficMatrix fast = block_cyclic_traffic(c.elements, 8, c.from, c.to);
  const TrafficMatrix ref = reference(c.elements, 8, c.from, c.to);
  for (NodeId i = 0; i < c.from.procs; ++i) {
    for (NodeId j = 0; j < c.to.procs; ++j) {
      ASSERT_EQ(fast.at(i, j), ref.at(i, j))
          << "pair " << i << "->" << j << " elements=" << c.elements;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BlockCyclicMatchesReference,
    ::testing::Values(CyclicCase{1, {2, 1}, {3, 1}},
                      CyclicCase{17, {2, 3}, {3, 2}},
                      CyclicCase{100, {4, 2}, {5, 3}},
                      CyclicCase{1000, {3, 7}, {7, 3}},
                      CyclicCase{999, {8, 4}, {2, 16}},
                      CyclicCase{1, {5, 5}, {5, 5}},
                      CyclicCase{12345, {6, 5}, {10, 1}}));

TEST(BlockCyclic, ValidatesArguments) {
  EXPECT_THROW(block_cyclic_traffic(0, 1, {1, 1}, {1, 1}), Error);
  EXPECT_THROW(block_cyclic_traffic(1, 0, {1, 1}, {1, 1}), Error);
  EXPECT_THROW(block_cyclic_traffic(1, 1, {0, 1}, {1, 1}), Error);
  EXPECT_THROW(block_cyclic_traffic(1, 1, {1, 0}, {1, 1}), Error);
  EXPECT_THROW(block_cyclic_owner({2, 2}, -1), Error);
}

// O(n_rows * n_cols) 2-D reference.
TrafficMatrix reference_2d(std::int64_t n_rows, std::int64_t n_cols,
                           std::int64_t element_bytes,
                           const BlockCyclic2dLayout& from,
                           const BlockCyclic2dLayout& to) {
  TrafficMatrix m(from.procs(), to.procs());
  for (std::int64_t i = 0; i < n_rows; ++i) {
    for (std::int64_t j = 0; j < n_cols; ++j) {
      m.add(block_cyclic_2d_owner(from, i, j),
            block_cyclic_2d_owner(to, i, j), element_bytes);
    }
  }
  return m;
}

TEST(BlockCyclic2d, OwnerRanksRowMajor) {
  const BlockCyclic2dLayout layout{{2, 2}, {3, 1}};
  EXPECT_EQ(layout.procs(), 6);
  EXPECT_EQ(block_cyclic_2d_owner(layout, 0, 0), 0);
  EXPECT_EQ(block_cyclic_2d_owner(layout, 0, 1), 1);
  EXPECT_EQ(block_cyclic_2d_owner(layout, 0, 2), 2);
  EXPECT_EQ(block_cyclic_2d_owner(layout, 2, 0), 3);  // row block 1 -> proc row 1
  EXPECT_EQ(block_cyclic_2d_owner(layout, 2, 1), 4);
}

TEST(BlockCyclic2d, MatchesReferenceOnAssortedGrids) {
  struct Case {
    std::int64_t rows, cols;
    BlockCyclic2dLayout from, to;
  };
  const Case cases[] = {
      {12, 12, {{2, 2}, {2, 2}}, {{3, 1}, {2, 3}}},
      {17, 9, {{2, 3}, {3, 2}}, {{3, 2}, {2, 1}}},
      {30, 7, {{4, 1}, {1, 4}}, {{2, 5}, {3, 1}}},
      {8, 8, {{2, 4}, {2, 4}}, {{2, 4}, {2, 4}}},  // identity
  };
  for (const Case& c : cases) {
    const TrafficMatrix fast =
        block_cyclic_2d_traffic(c.rows, c.cols, 8, c.from, c.to);
    const TrafficMatrix ref =
        reference_2d(c.rows, c.cols, 8, c.from, c.to);
    for (NodeId a = 0; a < c.from.procs(); ++a) {
      for (NodeId b = 0; b < c.to.procs(); ++b) {
        ASSERT_EQ(fast.at(a, b), ref.at(a, b))
            << c.rows << "x" << c.cols << " pair " << a << "->" << b;
      }
    }
  }
}

TEST(BlockCyclic2d, TotalConservedOnHugeMatrix) {
  // 10^5 x 10^5 matrix would be 10^10 elements — only the factorized
  // counter can do this.
  const BlockCyclic2dLayout from{{4, 64}, {4, 64}};
  const BlockCyclic2dLayout to{{2, 32}, {8, 16}};
  const TrafficMatrix m =
      block_cyclic_2d_traffic(100'000, 100'000, 1, from, to);
  EXPECT_EQ(m.total(), 100'000LL * 100'000LL);
}

TEST(BlockCyclic2d, SchedulesAsLocalRedistribution) {
  // Section 2.4 end-to-end: grid-to-grid redistribution with
  // k = min(n1, n2), scheduled and validated.
  const BlockCyclic2dLayout from{{2, 3}, {3, 2}};
  const BlockCyclic2dLayout to{{3, 2}, {2, 3}};
  const TrafficMatrix traffic =
      block_cyclic_2d_traffic(60, 60, 8, from, to);
  const BipartiteGraph g = traffic.to_graph(256.0);
  const int k = std::min(from.procs(), to.procs());
  const Schedule s = solve_kpbs(g, {k, 1, Algorithm::kOGGP}).schedule;
  validate_schedule(g, s, k);
}

TEST(BlockCyclic, LongArrayUsesPeriodicity) {
  // Period of (3,2)x(2,3) layouts is lcm(6,6) = 6; a huge array must still
  // be exact (and fast — this would time out if O(N)).
  const TrafficMatrix m = block_cyclic_traffic(60'000'000'000LL, 1,
                                               BlockCyclicLayout{3, 2},
                                               BlockCyclicLayout{2, 3});
  EXPECT_EQ(m.total(), 60'000'000'000LL);
}

}  // namespace
}  // namespace redist
