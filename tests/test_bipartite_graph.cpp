#include "graph/bipartite_graph.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

TEST(BipartiteGraph, EmptyGraphAggregates) {
  BipartiteGraph g(3, 4);
  EXPECT_EQ(g.left_count(), 3);
  EXPECT_EQ(g.right_count(), 4);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.total_weight(), 0);
  EXPECT_EQ(g.max_node_weight(), 0);
  EXPECT_EQ(g.max_degree(), 0);
}

TEST(BipartiteGraph, AddEdgeUpdatesAggregates) {
  BipartiteGraph g(2, 2);
  const EdgeId e0 = g.add_edge(0, 1, 5);
  const EdgeId e1 = g.add_edge(1, 1, 3);
  EXPECT_EQ(e0, 0);
  EXPECT_EQ(e1, 1);
  EXPECT_EQ(g.total_weight(), 8);
  EXPECT_EQ(g.node_weight_left(0), 5);
  EXPECT_EQ(g.node_weight_left(1), 3);
  EXPECT_EQ(g.node_weight_right(1), 8);
  EXPECT_EQ(g.node_weight_right(0), 0);
  EXPECT_EQ(g.degree_right(1), 2);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_EQ(g.max_node_weight(), 8);
  g.check_invariants();
}

TEST(BipartiteGraph, RejectsBadInputs) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(g.add_edge(0, 0, 0), Error);    // zero weight
  EXPECT_THROW(g.add_edge(0, 0, -1), Error);   // negative weight
  EXPECT_THROW(g.add_edge(2, 0, 1), Error);    // left out of range
  EXPECT_THROW(g.add_edge(0, 2, 1), Error);    // right out of range
  EXPECT_THROW(g.add_edge(-1, 0, 1), Error);
}

TEST(BipartiteGraph, DecreaseWeightAndDeath) {
  BipartiteGraph g(1, 1);
  const EdgeId e = g.add_edge(0, 0, 10);
  g.decrease_weight(e, 4);
  EXPECT_EQ(g.edge(e).weight, 6);
  EXPECT_TRUE(g.alive(e));
  EXPECT_EQ(g.degree_left(0), 1);
  g.decrease_weight(e, 6);
  EXPECT_FALSE(g.alive(e));
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.degree_left(0), 0);
  EXPECT_EQ(g.node_weight_left(0), 0);
  g.check_invariants();
}

TEST(BipartiteGraph, DecreaseWeightValidation) {
  BipartiteGraph g(1, 1);
  const EdgeId e = g.add_edge(0, 0, 5);
  EXPECT_THROW(g.decrease_weight(e, 0), Error);
  EXPECT_THROW(g.decrease_weight(e, 6), Error);
  EXPECT_THROW(g.decrease_weight(e + 1, 1), Error);
}

TEST(BipartiteGraph, ParallelEdgesAreDistinct) {
  BipartiteGraph g(1, 1);
  const EdgeId a = g.add_edge(0, 0, 2);
  const EdgeId b = g.add_edge(0, 0, 3);
  EXPECT_NE(a, b);
  EXPECT_EQ(g.degree_left(0), 2);
  EXPECT_EQ(g.node_weight_left(0), 5);
  g.decrease_weight(a, 2);
  EXPECT_EQ(g.degree_left(0), 1);
  EXPECT_EQ(g.alive_edge_count(), 1);
}

TEST(BipartiteGraph, AliveEdgesFilter) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 1);
  const EdgeId e1 = g.add_edge(0, 1, 2);
  g.add_edge(1, 0, 3);
  g.decrease_weight(e1, 2);
  const std::vector<EdgeId> alive = g.alive_edges();
  EXPECT_EQ(alive, (std::vector<EdgeId>{0, 2}));
}

TEST(BipartiteGraph, WeightRegularDetection) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 0, 2);
  g.add_edge(1, 1, 3);
  Weight c = 0;
  EXPECT_TRUE(g.is_weight_regular(&c));
  EXPECT_EQ(c, 5);
}

TEST(BipartiteGraph, WeightRegularRejectsUneven) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 3);
  g.add_edge(1, 1, 4);
  EXPECT_FALSE(g.is_weight_regular());
}

TEST(BipartiteGraph, WeightRegularStrictVsLoose) {
  // Node weights are 2 everywhere except an isolated right node.
  BipartiteGraph g(1, 2);
  g.add_edge(0, 0, 2);
  EXPECT_FALSE(g.is_weight_regular(nullptr, /*strict_all_nodes=*/true));
  Weight c = 0;
  EXPECT_TRUE(g.is_weight_regular(&c, /*strict_all_nodes=*/false));
  EXPECT_EQ(c, 2);
}

TEST(BipartiteGraph, AdjacencyLists) {
  BipartiteGraph g(2, 3);
  const EdgeId a = g.add_edge(0, 2, 1);
  const EdgeId b = g.add_edge(0, 1, 1);
  EXPECT_EQ(g.edges_of_left(0), (std::vector<EdgeId>{a, b}));
  EXPECT_TRUE(g.edges_of_left(1).empty());
  EXPECT_EQ(g.edges_of_right(2), (std::vector<EdgeId>{a}));
}

TEST(BipartiteGraphProperty, InvariantsHoldUnderRandomMutation) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    RandomGraphConfig config;
    config.max_left = 10;
    config.max_right = 10;
    config.max_edges = 30;
    BipartiteGraph g = random_bipartite(rng, config);
    g.check_invariants();
    // Randomly decrement weights until empty.
    while (!g.empty()) {
      const std::vector<EdgeId> alive = g.alive_edges();
      const EdgeId e = alive[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(alive.size()) - 1))];
      const Weight w = g.edge(e).weight;
      g.decrease_weight(e, rng.uniform_int(1, w));
    }
    g.check_invariants();
    EXPECT_EQ(g.total_weight(), 0);
    EXPECT_EQ(g.max_degree(), 0);
  }
}

}  // namespace
}  // namespace redist
