#include "matching/hungarian.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "matching/hopcroft_karp.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

Weight total_weight(const BipartiteGraph& g, const Matching& m) {
  Weight w = 0;
  for (EdgeId e : m.edges) w += g.edge(e).weight;
  return w;
}

TEST(Hungarian, PicksHeavierPerfectMatching) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 1);
  g.add_edge(1, 1, 1);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 0, 4);
  const Matching m = max_weight_perfect_matching(g);
  EXPECT_TRUE(is_perfect_matching(g, m));
  EXPECT_EQ(total_weight(g, m), 9);
}

TEST(Hungarian, TotalWeightCanBeatBottleneck) {
  // Bottleneck prefers {3, 3} (min 3 > min 1); max-weight prefers {10, 1}.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 10);
  g.add_edge(1, 1, 1);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 0, 3);
  const Matching m = max_weight_perfect_matching(g);
  EXPECT_EQ(total_weight(g, m), 11);
}

TEST(Hungarian, RequiresEqualSides) {
  BipartiteGraph g(1, 2);
  g.add_edge(0, 0, 1);
  EXPECT_THROW(max_weight_perfect_matching(g), Error);
}

TEST(Hungarian, ThrowsWithoutPerfectMatching) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 1);
  g.add_edge(1, 0, 1);
  EXPECT_THROW(max_weight_perfect_matching(g), Error);
}

TEST(Hungarian, ParallelEdgesUseTheHeaviest) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 2);
  const EdgeId heavy = g.add_edge(0, 0, 7);
  const Matching m = max_weight_perfect_matching(g);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.edges[0], heavy);
}

TEST(Hungarian, EmptySquareGraphThrows) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(max_weight_perfect_matching(g), Error);
}

class HungarianRandom : public ::testing::TestWithParam<std::uint64_t> {};

// Exhaustive cross-check on small dense graphs with guaranteed perfect
// matchings.
TEST_P(HungarianRandom, MatchesBruteForceOptimum) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId n = static_cast<NodeId>(rng.uniform_int(2, 5));
    BipartiteGraph g(n, n);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        g.add_edge(i, j, rng.uniform_int(1, 50));
      }
    }
    const Matching m = max_weight_perfect_matching(g);
    ASSERT_TRUE(is_perfect_matching(g, m));

    // Brute force over permutations.
    std::vector<NodeId> perm(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
    Weight best = 0;
    do {
      Weight w = 0;
      for (NodeId i = 0; i < n; ++i) {
        // Edge (i, perm[i]) has id i*n + perm[i] by construction.
        w += g.edge(i * n + perm[static_cast<std::size_t>(i)]).weight;
      }
      best = std::max(best, w);
    } while (std::next_permutation(perm.begin(), perm.end()));
    ASSERT_EQ(total_weight(g, m), best);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianRandom,
                         ::testing::Values(3, 6, 9, 12, 15));

TEST(Hungarian, WorksOnRegularizedGraphs) {
  // The real use: a strategy for WRGP peeling on weight-regular graphs.
  Rng rng(123);
  const BipartiteGraph g = random_weight_regular(rng, 20, 4, 1, 15);
  const Matching m = max_weight_perfect_matching(g);
  EXPECT_TRUE(is_perfect_matching(g, m));
  // At least as heavy as an arbitrary maximum matching.
  const Matching arb = max_matching(g);
  EXPECT_GE(total_weight(g, m), total_weight(g, arb));
}

}  // namespace
}  // namespace redist
