#include "kpbs/lower_bound.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kpbs/solver.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

TEST(LowerBound, EmptyGraphIsZero) {
  BipartiteGraph g(2, 2);
  const LowerBound lb = kpbs_lower_bound(g, 2, 1);
  EXPECT_EQ(lb.min_steps, 0);
  EXPECT_EQ(lb.value(), Rational(0));
}

TEST(LowerBound, SingleEdge) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 10);
  const LowerBound lb = kpbs_lower_bound(g, 1, 2);
  EXPECT_EQ(lb.min_steps, 1);
  EXPECT_EQ(lb.min_transmission, Rational(10));
  EXPECT_EQ(lb.value(), Rational(12));
}

TEST(LowerBound, DegreeTermDominates) {
  // Star with 4 leaves: Delta = 4 > ceil(m/k) = 1 when k = 4.
  BipartiteGraph g(1, 4);
  for (NodeId j = 0; j < 4; ++j) g.add_edge(0, j, 1);
  const LowerBound lb = kpbs_lower_bound(g, 4, 1);
  EXPECT_EQ(lb.min_steps, 4);
  EXPECT_EQ(lb.min_transmission, Rational(4));  // W(G) at the hub
}

TEST(LowerBound, EdgeCountTermDominates) {
  // 4 disjoint edges with k = 1: ceil(4/1) = 4 > Delta = 1.
  BipartiteGraph g(4, 4);
  for (NodeId i = 0; i < 4; ++i) g.add_edge(i, i, 2);
  const LowerBound lb = kpbs_lower_bound(g, 1, 3);
  EXPECT_EQ(lb.min_steps, 4);
  EXPECT_EQ(lb.min_transmission, Rational(8));  // P/k = 8 > W = 2
  EXPECT_EQ(lb.value(), Rational(3 * 4 + 8));
}

TEST(LowerBound, TransmissionTermIsExactRational) {
  // P = 7, k = 3 -> P/k = 7/3 (not representable in double exactly).
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0, 3);
  g.add_edge(1, 1, 2);
  g.add_edge(2, 2, 2);
  const LowerBound lb = kpbs_lower_bound(g, 3, 0);
  EXPECT_EQ(lb.min_transmission, Rational(3));  // W = 3 > 7/3
  BipartiteGraph h(4, 4);
  for (NodeId i = 0; i < 4; ++i) h.add_edge(i, i, 1);
  h.add_edge(0, 1, 1);
  h.add_edge(1, 2, 1);
  h.add_edge(2, 3, 1);  // P = 7, W = 2, k = 3 -> P/k = 7/3 > 2
  const LowerBound lb2 = kpbs_lower_bound(h, 3, 0);
  EXPECT_EQ(lb2.min_transmission, Rational(7, 3));
}

TEST(LowerBound, MonotoneNonIncreasingInK) {
  Rng rng(555);
  RandomGraphConfig config;
  config.max_left = 10;
  config.max_right = 10;
  config.max_edges = 30;
  for (int trial = 0; trial < 10; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    Rational prev;
    bool first = true;
    for (int k = 1; k <= 12; ++k) {
      const Rational v = kpbs_lower_bound(g, k, 1).value();
      if (!first) {
        EXPECT_LE(v, prev) << "k=" << k;
      }
      prev = v;
      first = false;
    }
  }
}

TEST(LowerBound, NegativeBetaRejected) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 1);
  EXPECT_THROW(kpbs_lower_bound(g, 1, -1), Error);
}

TEST(LowerBound, NeverExceedsAlgorithmCost) {
  Rng rng(808);
  for (int trial = 0; trial < 30; ++trial) {
    RandomGraphConfig config;
    config.max_left = 8;
    config.max_right = 8;
    config.max_edges = 24;
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 8));
    const Weight beta = rng.uniform_int(0, 4);
    const LowerBound lb = kpbs_lower_bound(g, k, beta);
    const Schedule s = solve_kpbs(g, {k, beta, Algorithm::kOGGP}).schedule;
    EXPECT_LE(lb.value(), Rational(s.cost(beta)));
  }
}

}  // namespace
}  // namespace redist
