#include "aggregation/aggregate.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kpbs/solver.hpp"
#include "workload/uniform_traffic.hpp"

namespace redist {
namespace {

TEST(Aggregation, ZeroThresholdIsIdentity) {
  TrafficMatrix m(2, 2);
  m.set(0, 0, 100);
  m.set(1, 0, 5);
  const AggregationPlan plan = plan_aggregation(m, 0);
  EXPECT_TRUE(plan.local.empty());
  EXPECT_EQ(plan.local_bytes, 0);
  EXPECT_EQ(plan.consolidated.at(1, 0), 5);
}

TEST(Aggregation, SmallMessagesRerouteToGateway) {
  TrafficMatrix m(3, 1);
  m.set(0, 0, 1000);  // gateway for receiver 0
  m.set(1, 0, 10);
  m.set(2, 0, 20);
  const AggregationPlan plan = plan_aggregation(m, 100);
  EXPECT_EQ(plan.consolidated.at(0, 0), 1030);
  EXPECT_EQ(plan.consolidated.at(1, 0), 0);
  EXPECT_EQ(plan.consolidated.at(2, 0), 0);
  ASSERT_EQ(plan.local.size(), 2u);
  EXPECT_EQ(plan.local_bytes, 30);
  for (const LocalTransfer& t : plan.local) {
    EXPECT_EQ(t.to, 0);
    EXPECT_EQ(t.receiver, 0);
  }
}

TEST(Aggregation, LargeMessagesStayPut) {
  TrafficMatrix m(2, 1);
  m.set(0, 0, 500);
  m.set(1, 0, 400);  // above threshold: not rerouted
  const AggregationPlan plan = plan_aggregation(m, 100);
  EXPECT_TRUE(plan.local.empty());
  EXPECT_EQ(plan.consolidated.at(1, 0), 400);
}

TEST(Aggregation, GatewayNeverReroutesItself) {
  TrafficMatrix m(2, 1);
  m.set(0, 0, 50);  // both below threshold; 0 is the gateway (largest)
  m.set(1, 0, 40);
  const AggregationPlan plan = plan_aggregation(m, 100);
  EXPECT_EQ(plan.consolidated.at(0, 0), 90);
  ASSERT_EQ(plan.local.size(), 1u);
  EXPECT_EQ(plan.local[0].from, 1);
}

TEST(Aggregation, TotalBytesConserved) {
  Rng rng(11);
  const TrafficMatrix m = uniform_sparse_traffic(rng, 8, 8, 0.7, 1, 5000);
  const AggregationPlan plan = plan_aggregation(m, 1000);
  EXPECT_EQ(plan.consolidated.total(), m.total());
}

TEST(Aggregation, LocalPhaseCostModel) {
  TrafficMatrix m(3, 1);
  m.set(0, 0, 1000);
  m.set(1, 0, 10);
  m.set(2, 0, 20);
  const AggregationPlan plan = plan_aggregation(m, 100);
  // Gateway node 0 receives 30 bytes locally; busiest node moves 30.
  EXPECT_DOUBLE_EQ(plan.local_phase_seconds(10.0), 3.0);
  EXPECT_THROW(plan.local_phase_seconds(0.0), Error);
}

TEST(Aggregation, ReducesEdgesAndScheduleCost) {
  // Many tiny flows plus per-receiver heavy hitters: aggregation should cut
  // the edge count and, with beta > 0, the schedule cost.
  Rng rng(22);
  TrafficMatrix m(10, 10);
  for (NodeId j = 0; j < 10; ++j) {
    m.set(j % 10, j, 2'000'000);  // gateway traffic
    for (NodeId i = 0; i < 10; ++i) {
      if (i != j % 10 && rng.bernoulli(0.8)) {
        m.set(i, j, static_cast<Bytes>(rng.uniform_int(1000, 20000)));
      }
    }
  }
  const AggregationPlan plan = plan_aggregation(m, 50'000);
  const double bpu = 100'000.0;
  const BipartiteGraph before = m.to_graph(bpu);
  const BipartiteGraph after = plan.consolidated.to_graph(bpu);
  EXPECT_LT(after.alive_edge_count(), before.alive_edge_count());
  const Weight beta = 2;
  const Weight cost_before =
      solve_kpbs(before, {4, beta, Algorithm::kOGGP}).schedule.cost(beta);
  const Weight cost_after =
      solve_kpbs(after, {4, beta, Algorithm::kOGGP}).schedule.cost(beta);
  EXPECT_LT(cost_after, cost_before);
}

}  // namespace
}  // namespace redist
