// Golden-makespan regression corpus: committed instance files
// (tests/data/golden_*.graph — golden_01..10 produced by `redist_cli
// generate` with the recorded seeds, golden_11..13 materialized from the
// builtin scenario matrix) whose exact GGP/OGGP step counts and costs were captured
// from the reference solver. Any change to normalization, regularization,
// peeling order, matching tie-breaking, or extraction that alters a single
// schedule shows up here as an exact-value diff — for the cold engine and,
// because the warm engine must be bit-identical, for the warm engine too.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "graph/graphio.hpp"
#include "kpbs/regularize.hpp"
#include "kpbs/solver.hpp"

#ifndef REDIST_TEST_DATA_DIR
#error "REDIST_TEST_DATA_DIR must point at tests/data"
#endif

namespace redist {
namespace {

struct GoldenCase {
  const char* file;  // relative to tests/data
  int k;
  Weight beta;
  std::size_t ggp_steps;
  Weight ggp_cost;
  std::size_t oggp_steps;
  Weight oggp_cost;
};

// Captured from the reference (cold) solver; see the generation parameters
// in docs/PERF.md. golden_01 is a deliberate degenerate corner (one edge).
constexpr GoldenCase kGolden[] = {
    {"golden_01.graph", 3, 1, 1, 3, 1, 3},
    {"golden_02.graph", 4, 1, 16, 83, 12, 79},
    {"golden_03.graph", 4, 2, 24, 528, 20, 520},
    {"golden_04.graph", 6, 1, 66, 55319, 45, 55298},
    {"golden_05.graph", 2, 0, 4, 6, 4, 6},
    {"golden_06.graph", 1, 5, 14, 511, 14, 511},
    {"golden_07.graph", 8, 1, 82, 236, 27, 181},
    {"golden_08.graph", 3, 10, 16, 1358, 12, 1318},
    {"golden_09.graph", 5, 1, 11, 44, 9, 42},
    {"golden_10.graph", 2, 100, 5, 3456, 4, 3356},
    // Adversarial scenario-matrix instances (workload/scenario.hpp): the
    // demand graphs of the builtin heterogeneous (scale 0.5), hotspot
    // (scale 0.5) and sparse_giant (scale 0.05) scenarios. Heterogeneity is
    // already folded into the weights; hotspot is near-degenerate (one
    // receiver serializes ~80% of the traffic, so GGP == OGGP here).
    {"golden_11.graph", 4, 1, 56, 311, 30, 285},
    {"golden_12.graph", 4, 1, 61, 189, 61, 189},
    {"golden_13.graph", 16, 1, 116, 233, 50, 167},
};

BipartiteGraph load_golden(const std::string& file) {
  const std::string path = std::string(REDIST_TEST_DATA_DIR) + "/" + file;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden instance: " << path;
  return read_graph(in);
}

class GoldenMakespans : public ::testing::TestWithParam<MatchingEngine> {};

TEST_P(GoldenMakespans, ExactStepCountsAndCosts) {
  const MatchingEngine engine = GetParam();
  for (const GoldenCase& c : kGolden) {
    const BipartiteGraph g = load_golden(c.file);
    const Schedule ggp = solve_kpbs(g, {c.k, c.beta, Algorithm::kGGP, engine}).schedule;
    EXPECT_EQ(ggp.step_count(), c.ggp_steps) << c.file << " (ggp)";
    EXPECT_EQ(ggp.cost(c.beta), c.ggp_cost) << c.file << " (ggp)";
    validate_schedule(g, ggp, clamp_k(g, c.k));

    const Schedule oggp = solve_kpbs(g, {c.k, c.beta, Algorithm::kOGGP, engine}).schedule;
    EXPECT_EQ(oggp.step_count(), c.oggp_steps) << c.file << " (oggp)";
    EXPECT_EQ(oggp.cost(c.beta), c.oggp_cost) << c.file << " (oggp)";
    validate_schedule(g, oggp, clamp_k(g, c.k));
  }
}

// OGGP never produces a costlier schedule than GGP on the corpus — the
// property the paper's Section 5 experiments rely on.
TEST(GoldenMakespans, OggpNeverWorseThanGgpOnCorpus) {
  for (const GoldenCase& c : kGolden) {
    EXPECT_LE(c.oggp_cost, c.ggp_cost) << c.file;
    EXPECT_LE(c.oggp_steps, c.ggp_steps) << c.file;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, GoldenMakespans,
                         ::testing::Values(MatchingEngine::kCold,
                                           MatchingEngine::kWarm),
                         [](const ::testing::TestParamInfo<MatchingEngine>& i) {
                           return engine_name(i.param);
                         });

}  // namespace
}  // namespace redist
