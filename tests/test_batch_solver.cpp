// Tests for the ThreadPool primitive and the batch K-PBS front end:
// the pool runs every submitted job and is reusable across wait_idle()
// cycles; solve_kpbs_batch is positionally identical to a sequential
// solve_kpbs loop at every thread count and propagates per-instance
// failures after the batch completes.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "runtime/batch.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleThenReuse) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPool, SingleThreadAndClamping) {
  ThreadPool pool(0);  // clamped to one worker
  EXPECT_EQ(pool.size(), 1);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SubmitFromWithinJob) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.submit([&counter] { counter.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

std::vector<KpbsRequest> sample_requests(std::size_t count) {
  Rng rng(0xBA7C4);
  std::vector<KpbsRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RandomGraphConfig config;
    config.max_left = 10;
    config.max_right = 10;
    config.max_edges = 40;
    KpbsRequest request;
    request.demand = random_bipartite(rng, config);
    request.options.k = static_cast<int>(rng.uniform_int(1, 8));
    request.options.beta = rng.uniform_int(0, 3);
    request.options.algorithm =
        (i % 2 == 0) ? Algorithm::kOGGP : Algorithm::kGGP;
    requests.push_back(std::move(request));
  }
  return requests;
}

void expect_equal_schedules(const Schedule& a, const Schedule& b,
                            std::size_t index) {
  ASSERT_EQ(a.step_count(), b.step_count()) << "instance " << index;
  for (std::size_t s = 0; s < a.step_count(); ++s) {
    const Step& sa = a.steps()[s];
    const Step& sb = b.steps()[s];
    ASSERT_EQ(sa.comms.size(), sb.comms.size())
        << "instance " << index << " step " << s;
    for (std::size_t c = 0; c < sa.comms.size(); ++c) {
      EXPECT_EQ(sa.comms[c].sender, sb.comms[c].sender);
      EXPECT_EQ(sa.comms[c].receiver, sb.comms[c].receiver);
      EXPECT_EQ(sa.comms[c].amount, sb.comms[c].amount);
    }
  }
}

TEST(KpbsBatch, MatchesSequentialSolveAtEveryThreadCount) {
  const std::vector<KpbsRequest> requests = sample_requests(12);
  std::vector<Schedule> reference;
  reference.reserve(requests.size());
  for (const KpbsRequest& r : requests) {
    SolverOptions cold = r.options;
    cold.engine = MatchingEngine::kCold;
    reference.push_back(solve_kpbs(r.demand, cold).schedule);
  }
  for (const int threads : {1, 2, 4}) {
    for (const MatchingEngine engine :
         {MatchingEngine::kCold, MatchingEngine::kWarm}) {
      std::vector<KpbsRequest> engined = requests;
      for (KpbsRequest& r : engined) r.options.engine = engine;
      BatchOptions options;
      options.threads = threads;
      const std::vector<SolveResult> batch =
          solve_kpbs_batch(engined, options);
      ASSERT_EQ(batch.size(), requests.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        expect_equal_schedules(reference[i], batch[i].schedule, i);
        EXPECT_GE(batch[i].evaluation_ratio, 1.0) << "instance " << i;
        EXPECT_GE(batch[i].solve_ms, 0.0) << "instance " << i;
      }
    }
  }
}

TEST(KpbsBatch, EmptyBatch) {
  EXPECT_TRUE(solve_kpbs_batch({}).empty());
}

TEST(KpbsBatch, DefaultThreadCount) {
  const std::vector<KpbsRequest> requests = sample_requests(3);
  BatchOptions options;  // threads = 0 -> hardware concurrency, clamped
  const std::vector<SolveResult> batch = solve_kpbs_batch(requests, options);
  EXPECT_EQ(batch.size(), requests.size());
}

TEST(KpbsBatch, PropagatesFirstFailureAfterCompletingTheRest) {
  std::vector<KpbsRequest> requests = sample_requests(6);
  requests[2].options.beta = -1;  // solve_kpbs rejects negative beta
  for (const int threads : {1, 3}) {
    BatchOptions options;
    options.threads = threads;
    EXPECT_THROW(solve_kpbs_batch(requests, options), Error)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace redist
