// Mutation-based property test of the ScheduleValidator: start from a
// known-good OGGP schedule on a random instance, apply one of five seeded
// corruption kinds, and the validator must reject the result every time,
// flagging the right invariant. This is the adversarial counterpart to the
// acceptance tests in test_validate.cpp — a validator that accepts
// corrupted schedules is worse than none.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "kpbs/regularize.hpp"
#include "kpbs/solver.hpp"
#include "validate/schedule_validator.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

Schedule rebuild(std::vector<Step> steps) {
  Schedule s;
  for (Step& step : steps) s.add_step(std::move(step));
  return s;
}

std::vector<Step> copy_steps(const Schedule& s) { return s.steps(); }

struct Instance {
  BipartiteGraph graph;
  Schedule schedule;
  int k = 0;
  Weight beta = 0;
};

Instance make_instance(Rng& rng) {
  RandomGraphConfig config;
  config.max_left = 10;
  config.max_right = 10;
  config.max_edges = 30;
  BipartiteGraph g = random_bipartite(rng, config);
  const int k = clamp_k(g, static_cast<int>(rng.uniform_int(2, 5)));
  const Weight beta = rng.uniform_int(0, 4);
  Schedule s = solve_kpbs(g, {k, beta, Algorithm::kOGGP}).schedule;
  return Instance{std::move(g), std::move(s), k, beta};
}

ValidationReport run_validator(const Instance& inst, const Schedule& s,
                               Weight reported_makespan = -1) {
  ScheduleValidatorOptions options;
  options.k = inst.k;
  options.beta = inst.beta;
  options.reported_makespan = reported_makespan;
  return ScheduleValidator(options).validate(inst.graph, s);
}

constexpr int kTrials = 40;

TEST(ValidatorMutations, PristineSchedulesPass) {
  Rng rng(101);
  for (int trial = 0; trial < kTrials; ++trial) {
    const Instance inst = make_instance(rng);
    const ValidationReport report = run_validator(inst, inst.schedule);
    ASSERT_TRUE(report.ok()) << report.to_string();
  }
}

// Corruption 1 — drop a piece: remove one communication; its (sender,
// receiver) pair now under-transfers.
TEST(ValidatorMutations, DroppedPieceIsRejected) {
  Rng rng(102);
  for (int trial = 0; trial < kTrials; ++trial) {
    const Instance inst = make_instance(rng);
    ASSERT_GT(inst.schedule.step_count(), 0u);
    std::vector<Step> steps = copy_steps(inst.schedule);
    const auto si = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(steps.size()) - 1));
    auto& comms = steps[si].comms;
    ASSERT_FALSE(comms.empty());
    const auto ci = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(comms.size()) - 1));
    comms.erase(comms.begin() + static_cast<std::ptrdiff_t>(ci));
    if (comms.empty()) steps.erase(steps.begin() + static_cast<std::ptrdiff_t>(si));

    const ValidationReport report = run_validator(inst, rebuild(steps));
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has(InvariantKind::kCoverage)) << report.to_string();
  }
}

// Corruption 2 — duplicate an edge: replay one communication in its own
// extra step; the pair now over-transfers (the step itself is a fine
// 1-element matching, so only coverage can catch this).
TEST(ValidatorMutations, DuplicatedEdgeIsRejected) {
  Rng rng(103);
  for (int trial = 0; trial < kTrials; ++trial) {
    const Instance inst = make_instance(rng);
    std::vector<Step> steps = copy_steps(inst.schedule);
    const auto si = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(steps.size()) - 1));
    ASSERT_FALSE(steps[si].comms.empty());
    Step extra;
    extra.comms.push_back(steps[si].comms.front());
    steps.push_back(std::move(extra));

    const ValidationReport report = run_validator(inst, rebuild(steps));
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has(InvariantKind::kCoverage)) << report.to_string();
  }
}

// Corruption 3 — exceed k: pad one step with copies of its first
// communication until it holds k + 1; the width invariant must fire
// (other invariants may fire too, but width must be among them).
TEST(ValidatorMutations, OverwideStepIsRejected) {
  Rng rng(104);
  for (int trial = 0; trial < kTrials; ++trial) {
    const Instance inst = make_instance(rng);
    std::vector<Step> steps = copy_steps(inst.schedule);
    Step& victim = steps.front();
    ASSERT_FALSE(victim.comms.empty());
    while (victim.comms.size() <= static_cast<std::size_t>(inst.k)) {
      victim.comms.push_back(victim.comms.front());
    }

    const ValidationReport report = run_validator(inst, rebuild(steps));
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has(InvariantKind::kStepWidth)) << report.to_string();
  }
}

// Corruption 4 — conflicting endpoints: give one step a second
// communication from a sender it already uses (1-port violation). The
// amounts are split so coverage stays exact — only the matching invariant
// can catch this one.
TEST(ValidatorMutations, ConflictingEndpointsAreRejected) {
  Rng rng(105);
  int applied = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const Instance inst = make_instance(rng);
    std::vector<Step> steps = copy_steps(inst.schedule);
    // Find a communication with amount >= 2 and split it inside its step.
    bool done = false;
    for (Step& step : steps) {
      for (Communication& c : step.comms) {
        if (c.amount < 2) continue;
        Communication half = c;
        half.amount = c.amount / 2;
        c.amount -= half.amount;
        step.comms.push_back(half);  // same sender AND receiver reused
        done = true;
        break;
      }
      if (done) break;
    }
    if (!done) continue;  // all-unit schedule: nothing to split
    ++applied;

    const ValidationReport report = run_validator(inst, rebuild(steps));
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has(InvariantKind::kMatching)) << report.to_string();
    EXPECT_FALSE(report.has(InvariantKind::kCoverage)) << report.to_string();
  }
  EXPECT_GT(applied, kTrials / 2);
}

// Corruption 5 — misreported makespan: the schedule itself is untouched
// but the externally claimed makespan is off by one.
TEST(ValidatorMutations, MisreportedMakespanIsRejected) {
  Rng rng(106);
  for (int trial = 0; trial < kTrials; ++trial) {
    const Instance inst = make_instance(rng);
    const Weight honest = inst.schedule.cost(inst.beta);
    ASSERT_TRUE(run_validator(inst, inst.schedule, honest).ok());

    const ValidationReport report =
        run_validator(inst, inst.schedule, honest + 1);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has(InvariantKind::kMakespan)) << report.to_string();
  }
}

}  // namespace
}  // namespace redist
