#include "kpbs/regularize.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "matching/hopcroft_karp.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

int real_edges_in(const Regularized& reg, const Matching& m) {
  int count = 0;
  for (EdgeId e : m.edges) {
    count += (reg.origin[static_cast<std::size_t>(e)] != kNoEdge);
  }
  return count;
}

TEST(ClampK, Range) {
  BipartiteGraph g(3, 5);
  g.add_edge(0, 0, 1);
  EXPECT_EQ(clamp_k(g, 0), 1);
  EXPECT_EQ(clamp_k(g, -4), 1);
  EXPECT_EQ(clamp_k(g, 2), 2);
  EXPECT_EQ(clamp_k(g, 3), 3);
  EXPECT_EQ(clamp_k(g, 100), 3);  // min(n1, n2)
}

TEST(Regularize, RejectsEmptyGraph) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(regularize(g, 1), Error);
}

TEST(Regularize, CaseOneNoFillerNeeded) {
  // P = 8, k = 2, c = 4 = W(G): case 1 of the paper (k | P, W <= P/k).
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 4);
  g.add_edge(1, 1, 4);
  const Regularized reg = regularize(g, 2);
  EXPECT_EQ(reg.regular_weight, 4);
  EXPECT_EQ(reg.k, 2);
  Weight c = 0;
  EXPECT_TRUE(reg.graph.is_weight_regular(&c));
  EXPECT_EQ(c, 4);
  EXPECT_EQ(reg.graph.left_count(), reg.graph.right_count());
  // sides: |V1|+|V2|-k = 2.
  EXPECT_EQ(reg.graph.left_count(), 2);
}

TEST(Regularize, CaseTwoHeavyVertex) {
  // W(G) = 10 > P/k = 11/2: filler edges must pad P up to k*W = 20.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 10);
  g.add_edge(1, 1, 1);
  const Regularized reg = regularize(g, 2);
  EXPECT_EQ(reg.regular_weight, 10);
  EXPECT_EQ(reg.graph.total_weight(),
            reg.regular_weight * reg.graph.left_count());
  Weight c = 0;
  EXPECT_TRUE(reg.graph.is_weight_regular(&c));
  EXPECT_EQ(c, 10);
}

TEST(Regularize, CaseTwoNonDivisible) {
  // W <= P/k but k does not divide P: c = ceil(P/k).
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0, 3);
  g.add_edge(1, 1, 2);
  g.add_edge(2, 2, 2);  // P = 7, k = 2 -> c = 4
  const Regularized reg = regularize(g, 2);
  EXPECT_EQ(reg.regular_weight, 4);
  Weight c = 0;
  EXPECT_TRUE(reg.graph.is_weight_regular(&c));
  EXPECT_EQ(c, 4);
}

TEST(Regularize, OriginMapsRealEdgesFaithfully) {
  BipartiteGraph g(2, 3);
  const EdgeId a = g.add_edge(0, 2, 5);
  const EdgeId b = g.add_edge(1, 0, 7);
  const Regularized reg = regularize(g, 2);
  int real = 0;
  for (std::size_t e = 0; e < reg.origin.size(); ++e) {
    const EdgeId orig = reg.origin[e];
    if (orig == kNoEdge) continue;
    ++real;
    const Edge& je = reg.graph.edge(static_cast<EdgeId>(e));
    const Edge& ge = g.edge(orig);
    EXPECT_EQ(je.left, ge.left);
    EXPECT_EQ(je.right, ge.right);
    EXPECT_EQ(je.weight, ge.weight);
    EXPECT_TRUE(orig == a || orig == b);
  }
  EXPECT_EQ(real, 2);
}

TEST(Regularize, PropositionOneExactlyKPrimeEdges) {
  // Any perfect matching of J has at most k real edges (Proposition 1).
  Rng rng(321);
  for (int trial = 0; trial < 30; ++trial) {
    RandomGraphConfig config;
    config.max_left = 9;
    config.max_right = 9;
    config.max_edges = 25;
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 10));
    const Regularized reg = regularize(g, k);
    const Matching m = max_matching(reg.graph);
    ASSERT_TRUE(is_perfect_matching(reg.graph, m))
        << "regularized graph must admit a perfect matching";
    ASSERT_LE(real_edges_in(reg, m), reg.k);
  }
}

TEST(Regularize, RegularityAndSideEquality) {
  Rng rng(654);
  for (int trial = 0; trial < 30; ++trial) {
    RandomGraphConfig config;
    config.max_left = 12;
    config.max_right = 12;
    config.max_edges = 50;
    config.max_weight = 40;
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 12));
    const Regularized reg = regularize(g, k);
    Weight c = 0;
    ASSERT_TRUE(reg.graph.is_weight_regular(&c));
    ASSERT_EQ(c, reg.regular_weight);
    ASSERT_EQ(reg.graph.left_count(), reg.graph.right_count());
    // c is the theoretical max(W, ceil(P/k)).
    const Weight expected =
        std::max(g.max_node_weight(),
                 ceil_div(g.total_weight(), reg.k));
    ASSERT_EQ(c, expected);
    reg.graph.check_invariants();
  }
}

TEST(Regularize, SyntheticEdgesNeverConnectTwoDummies) {
  // Deficit edges must connect an original/filler node with a dummy — never
  // dummy to dummy (paper requirement that keeps Proposition 1 counting).
  Rng rng(987);
  for (int trial = 0; trial < 20; ++trial) {
    RandomGraphConfig config;
    config.max_left = 8;
    config.max_right = 8;
    config.max_edges = 20;
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 8));
    const Regularized reg = regularize(g, k);
    for (std::size_t e = 0; e < reg.origin.size(); ++e) {
      const Edge& edge = reg.graph.edge(static_cast<EdgeId>(e));
      ASSERT_FALSE(reg.is_dummy_left(edge.left) &&
                   reg.is_dummy_right(edge.right))
          << "edge " << e << " connects two dummy nodes";
      if (reg.origin[e] != kNoEdge) {
        // Real edges never touch synthetic nodes at all.
        ASSERT_LT(edge.left, reg.original_left);
        ASSERT_LT(edge.right, reg.original_right);
      }
    }
  }
}

}  // namespace
}  // namespace redist
