#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kpbs/solver.hpp"
#include "workload/uniform_traffic.hpp"

namespace redist {
namespace {

ClusterConfig fast_cluster() {
  ClusterConfig c;
  c.card_out_bps = 2e6;
  c.card_in_bps = 2e6;
  c.backbone_bps = 4e6;
  c.chunk_bytes = 4096;
  c.burst_bytes = 8192;
  return c;
}

TEST(RuntimeEngine, BruteforceDeliversAndVerifies) {
  TrafficMatrix m(2, 2);
  m.set(0, 0, 30000);
  m.set(0, 1, 20000);
  m.set(1, 0, 10000);
  const RunResult r = run_bruteforce(fast_cluster(), m);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.bytes_delivered, 60000);
  EXPECT_EQ(r.steps, 1u);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(RuntimeEngine, BruteforceEmptyMatrix) {
  TrafficMatrix m(2, 2);
  const RunResult r = run_bruteforce(fast_cluster(), m);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.steps, 0u);
  EXPECT_EQ(r.bytes_delivered, 0);
}

TEST(RuntimeEngine, ScheduledDeliversExactlyTheMatrix) {
  Rng rng(9);
  const TrafficMatrix m = uniform_all_pairs_traffic(rng, 3, 3, 5000, 15000);
  const double bytes_per_unit = 5000.0;
  const BipartiteGraph g = m.to_graph(bytes_per_unit);
  const Schedule s = solve_kpbs(g, {2, 1, Algorithm::kOGGP}).schedule;
  const RunResult r = run_scheduled(fast_cluster(), m, s, bytes_per_unit);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.bytes_delivered, m.total());
  EXPECT_GE(r.steps, s.step_count());
}

TEST(RuntimeEngine, ScheduledRespectsRateCeilings) {
  // 60 KB over a 2 MB/s card cannot be faster than ~laxly 10 ms; mostly a
  // smoke check that shaping is wired into the path.
  TrafficMatrix m(1, 1);
  m.set(0, 0, 60000);
  ClusterConfig config = fast_cluster();
  config.card_out_bps = 1e6;  // 1 MB/s: 60 ms nominal
  const BipartiteGraph g = m.to_graph(10000.0);
  const Schedule s = solve_kpbs(g, {1, 0, Algorithm::kGGP}).schedule;
  const RunResult r = run_scheduled(config, m, s, 10000.0);
  EXPECT_TRUE(r.verified);
  EXPECT_GE(r.seconds, 0.03);
}

TEST(RuntimeEngine, RejectsInvalidConfigs) {
  TrafficMatrix m(1, 1);
  m.set(0, 0, 1);
  ClusterConfig bad = fast_cluster();
  bad.card_out_bps = 0;
  EXPECT_THROW(run_bruteforce(bad, m), Error);
}

TEST(RuntimeEngine, ScheduledToleratesEmptySchedule) {
  TrafficMatrix m(2, 2);  // nothing to send
  Schedule s;
  const RunResult r = run_scheduled(fast_cluster(), m, s, 1000.0);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.bytes_delivered, 0);
}

}  // namespace
}  // namespace redist
