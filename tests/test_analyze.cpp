// Tests for tools/analyze: every rule is pinned by a must-fire and a
// near-miss fixture under tests/analyze/<case>/ (each case is a miniature
// repo root that load_closure walks), plus in-memory cases for drift,
// rule filtering, and the golden report format.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/analyze_core.hpp"

namespace {

using redist::analyze::AnalysisResult;
using redist::analyze::Finding;
using redist::analyze::Options;
using redist::analyze::SourceFile;

std::string fixture_root(const std::string& name) {
  return std::string(REDIST_ANALYZE_FIXTURE_DIR) + "/" + name;
}

AnalysisResult analyze_fixture(const std::string& name,
                               const std::vector<std::string>& tus,
                               const Options& options = {}) {
  const auto sources =
      redist::analyze::load_closure(fixture_root(name), tus);
  EXPECT_FALSE(sources.empty()) << "fixture " << name << " loaded nothing";
  return redist::analyze::run_analysis(sources, options);
}

std::vector<Finding> by_rule(const AnalysisResult& r,
                             const std::string& rule) {
  std::vector<Finding> out;
  for (const auto& f : r.findings)
    if (f.rule == rule) out.push_back(f);
  return out;
}

bool mentions(const Finding& f, const std::string& needle) {
  return f.message.find(needle) != std::string::npos;
}

TEST(Analyze, DeterminismReachabilityFiresThroughCallChain) {
  const auto r = analyze_fixture("det", {"src/kpbs/det.cpp"});
  const auto det = by_rule(r, "determinism");
  ASSERT_EQ(det.size(), 3u) << redist::analyze::format_report(r.findings);
  // All three sinks live in the .cpp; messages attribute root and chain.
  for (const auto& f : det) EXPECT_EQ(f.file, "src/kpbs/det.cpp");

  const auto rng = std::find_if(det.begin(), det.end(), [](const Finding& f) {
    return f.message.find("'rand'") != std::string::npos;
  });
  ASSERT_NE(rng, det.end());
  EXPECT_TRUE(mentions(*rng, "noisy_helper"));
  EXPECT_TRUE(mentions(*rng, "deterministic_entry"));

  EXPECT_TRUE(std::any_of(det.begin(), det.end(), [](const Finding& f) {
    return f.message.find("unordered-container iteration") !=
           std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(det.begin(), det.end(), [](const Finding& f) {
    return f.message.find("float comparator") != std::string::npos;
  }));

  // Near misses: the ALLOW_NONDET boundary, the unannotated helper, the
  // std::map loop, stable_sort, and the integer comparator stay silent —
  // so determinism is the only rule with findings at all.
  EXPECT_EQ(r.findings.size(), det.size())
      << redist::analyze::format_report(r.findings);
}

TEST(Analyze, PurityAddsIoSinksDeterminismDoesNot) {
  const auto r = analyze_fixture("purity", {"src/common/pure.cpp"});
  ASSERT_EQ(r.findings.size(), 1u)
      << redist::analyze::format_report(r.findings);
  EXPECT_EQ(r.findings[0].rule, "purity");
  EXPECT_TRUE(mentions(r.findings[0], "'printf'"));
  EXPECT_TRUE(mentions(r.findings[0], "pure_value"));
}

TEST(Analyze, LayeringRejectsUpwardIncludeButNotConditionalSeam) {
  const auto r = analyze_fixture(
      "layering",
      {"src/matching/up.hpp", "src/matching/guarded.hpp",
       "src/kpbs/sched.hpp"});
  ASSERT_EQ(r.findings.size(), 1u)
      << redist::analyze::format_report(r.findings);
  EXPECT_EQ(r.findings[0].rule, "layering");
  EXPECT_EQ(r.findings[0].file, "src/matching/up.hpp");
  EXPECT_TRUE(mentions(r.findings[0], "kpbs"));
  // The module graph export still records the edge (solid, because up.hpp
  // makes it unconditional).
  EXPECT_NE(r.include_dot.find("\"matching\" -> \"kpbs\""),
            std::string::npos);
}

TEST(Analyze, LayeringAllowsTheSanctionedObsToNetEdge) {
  // obs -> net is the one reviewed upward edge (the introspection endpoint
  // serves over loopback sockets); any other module reaching into net from
  // below still fires.
  const std::vector<SourceFile> sources = {
      {"src/obs/endpoint.hpp",
       "#pragma once\n#include \"net/sock.hpp\"\nREDIST_LAYER(\"obs\");\n"},
      {"src/graph/leak.hpp",
       "#pragma once\n#include \"net/sock.hpp\"\nREDIST_LAYER(\"graph\");\n"},
      {"src/net/sock.hpp", "#pragma once\nREDIST_LAYER(\"net\");\n"}};
  Options layering_only;
  layering_only.rules = {"layering"};
  const auto r = redist::analyze::run_analysis(sources, layering_only);
  ASSERT_EQ(r.findings.size(), 1u)
      << redist::analyze::format_report(r.findings);
  EXPECT_EQ(r.findings[0].rule, "layering");
  EXPECT_EQ(r.findings[0].file, "src/graph/leak.hpp");
  EXPECT_TRUE(mentions(r.findings[0], "net"));
}

TEST(Analyze, IncludeCycleDetected) {
  const auto r =
      analyze_fixture("cycle", {"src/graph/a.hpp", "src/graph/b.hpp"});
  const auto cycles = by_rule(r, "include-cycle");
  ASSERT_EQ(cycles.size(), 1u)
      << redist::analyze::format_report(r.findings);
  EXPECT_TRUE(mentions(cycles[0], "src/graph/a.hpp"));
  EXPECT_TRUE(mentions(cycles[0], "src/graph/b.hpp"));
  EXPECT_EQ(r.findings.size(), cycles.size());
}

TEST(Analyze, LayerTagMissingAndMismatchedBothFire) {
  const auto r = analyze_fixture(
      "layer_tag",
      {"src/obs/untagged.hpp", "src/obs/mistagged.hpp",
       "src/obs/tagged.hpp", "src/obs/impl.cpp"});
  const auto tags = by_rule(r, "layer-tag");
  ASSERT_EQ(tags.size(), 2u) << redist::analyze::format_report(r.findings);
  EXPECT_EQ(tags[0].file, "src/obs/mistagged.hpp");
  EXPECT_TRUE(mentions(tags[0], "REDIST_LAYER(\"obs\")"));
  EXPECT_EQ(tags[1].file, "src/obs/untagged.hpp");
  EXPECT_EQ(tags[1].line, 1);
  EXPECT_EQ(r.findings.size(), tags.size());
}

TEST(Analyze, DeprecatedPositionalSolveKpbsCallAndRedeclaration) {
  const auto r = analyze_fixture("deprecated", {"src/kpbs/calls.cpp"});
  const auto dep = by_rule(r, "deprecated-api");
  ASSERT_EQ(dep.size(), 2u) << redist::analyze::format_report(r.findings);
  for (const auto& f : dep) {
    EXPECT_EQ(f.file, "src/kpbs/calls.cpp");
    EXPECT_TRUE(mentions(f, "SolverOptions"));
  }
  // The braced-options and two-argument calls stay silent.
  EXPECT_EQ(r.findings.size(), dep.size());
}

TEST(Analyze, LockTransitionScopedToNetAndRobustWithSuppression) {
  const auto r = analyze_fixture(
      "lock", {"src/net/chan.cpp", "src/runtime/pool.cpp"});
  const auto locks = by_rule(r, "lock-transition");
  ASSERT_EQ(locks.size(), 2u) << redist::analyze::format_report(r.findings);
  // Both findings are the manual pair in src/net; the runtime file is out
  // of the rule's scope and the try_lock carries an allow() suppression.
  for (const auto& f : locks) EXPECT_EQ(f.file, "src/net/chan.cpp");
  EXPECT_TRUE(mentions(locks[0], ".lock()"));
  EXPECT_TRUE(mentions(locks[1], ".unlock()"));
  EXPECT_EQ(r.findings.size(), locks.size());
}

TEST(Analyze, LockRankInversionsDirectAndInterprocedural) {
  const auto r = analyze_fixture("lockrank", {"src/runtime/ranks.cpp"});
  const auto ranks = by_rule(r, "lock-rank");
  // Expected: the unranked lock, the direct inversion, the derived
  // (call-graph) inversion, and the cycle those two inversions close with
  // the correctly-ordered chain. The suppressed unranked lock and both
  // ordered chains stay silent.
  EXPECT_EQ(r.findings.size(), ranks.size())
      << redist::analyze::format_report(r.findings);
  ASSERT_EQ(ranks.size(), 4u) << redist::analyze::format_report(r.findings);

  EXPECT_TRUE(std::any_of(ranks.begin(), ranks.end(), [](const Finding& f) {
    return f.message.find("'naked_mu' has no REDIST_LOCK_RANK") !=
           std::string::npos;
  }));
  EXPECT_FALSE(std::any_of(ranks.begin(), ranks.end(), [](const Finding& f) {
    return f.message.find("hushed_mu") != std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(ranks.begin(), ranks.end(), [](const Finding& f) {
    return f.message.find("acquired directly in 'fixture_inverted'") !=
           std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(ranks.begin(), ranks.end(), [](const Finding& f) {
    return f.message.find("via call to 'fixture_take_a' in "
                          "'fixture_interprocedural_inversion'") !=
           std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(ranks.begin(), ranks.end(), [](const Finding& f) {
    return f.message.find("lock acquisition cycle") != std::string::npos;
  }));
}

TEST(Analyze, LockRankDeclaredCycleAndUnknownTarget) {
  const auto r = analyze_fixture("lockrank", {"src/runtime/cycle.cpp"});
  const auto ranks = by_rule(r, "lock-rank");
  EXPECT_EQ(r.findings.size(), ranks.size())
      << redist::analyze::format_report(r.findings);
  // The d_mu -> c_mu edge inverts the ranks, the pair forms a declared
  // cycle, and e_mu points at a lock that does not exist.
  ASSERT_EQ(ranks.size(), 3u) << redist::analyze::format_report(r.findings);
  EXPECT_TRUE(std::any_of(ranks.begin(), ranks.end(), [](const Finding& f) {
    return f.message.find("declared by REDIST_ACQUIRED_BEFORE") !=
           std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(ranks.begin(), ranks.end(), [](const Finding& f) {
    return f.message.find("lock acquisition cycle") != std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(ranks.begin(), ranks.end(), [](const Finding& f) {
    return f.message.find("unknown lock 'ghost_mu'") != std::string::npos;
  }));
}

TEST(Analyze, NoblockUnderLockAndReachabilityWithEscapes) {
  const auto r = analyze_fixture("noblock", {"src/runtime/blocky.cpp"});
  const auto blocks = by_rule(r, "noblock");
  EXPECT_EQ(r.findings.size(), blocks.size())
      << redist::analyze::format_report(r.findings);
  // Expected: the sleep under q_mu, the foreign condvar wait, the pool
  // enqueue, the interprocedural chain into the sleeping helper, and the
  // usleep reachable from the REDIST_NOBLOCK hot path. The unlock-then-
  // sleep, own-mutex wait, ALLOW_BLOCK boundary, and clean hot path stay
  // silent.
  ASSERT_EQ(blocks.size(), 5u) << redist::analyze::format_report(r.findings);

  EXPECT_TRUE(std::any_of(blocks.begin(), blocks.end(), [](const Finding& f) {
    return f.message.find("'sleep_for' in 'fixture_sleep_under_lock'") !=
           std::string::npos;
  }));
  EXPECT_FALSE(std::any_of(blocks.begin(), blocks.end(), [](const Finding& f) {
    return f.message.find("fixture_unlock_then_sleep") != std::string::npos ||
           f.message.find("fixture_own_wait") != std::string::npos ||
           f.message.find("fixture_sanctioned") != std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(blocks.begin(), blocks.end(), [](const Finding& f) {
    return f.message.find("condvar wait under a different lock") !=
           std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(blocks.begin(), blocks.end(), [](const Finding& f) {
    return f.message.find("'submit' in 'fixture_enqueue_under_lock'") !=
           std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(blocks.begin(), blocks.end(), [](const Finding& f) {
    return f.message.find("call to 'fixture_slow_helper'") !=
               std::string::npos &&
           f.message.find("blocking 'sleep_for'") != std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(blocks.begin(), blocks.end(), [](const Finding& f) {
    return f.message.find("reachable from REDIST_NOBLOCK "
                          "'fixture_hot_path'") != std::string::npos;
  }));
}

TEST(Analyze, NoallocDirectChainEscapeAndSuppression) {
  const auto r = analyze_fixture("noalloc", {"src/matching/hot.cpp"});
  const auto allocs = by_rule(r, "noalloc");
  EXPECT_EQ(r.findings.size(), allocs.size())
      << redist::analyze::format_report(r.findings);
  // Expected: the bare new and the push_back reached through the call
  // chain. The clean probe, the ALLOW_ALLOC boundary, and the suppressed
  // growth stay silent.
  ASSERT_EQ(allocs.size(), 2u) << redist::analyze::format_report(r.findings);
  EXPECT_TRUE(std::any_of(allocs.begin(), allocs.end(), [](const Finding& f) {
    return f.message.find("allocation 'new' in 'fixture_direct_new'") !=
           std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(allocs.begin(), allocs.end(), [](const Finding& f) {
    return f.message.find("'push_back' in 'fixture_grow' (reached via "
                          "'fixture_probe')") != std::string::npos;
  }));
  EXPECT_FALSE(std::any_of(allocs.begin(), allocs.end(), [](const Finding& f) {
    return f.message.find("fixture_buffered") != std::string::npos ||
           f.message.find("fixture_hushed") != std::string::npos;
  }));
}

TEST(Analyze, ContractDriftRemovalAdditionAndMissingBaseline) {
  const std::vector<SourceFile> sources = {
      {"src/kpbs/contract.hpp",
       "#pragma once\nREDIST_LAYER(\"kpbs\");\nREDIST_DETERMINISTIC\n"
       "int foo(int n);\n"}};

  Options in_sync;
  in_sync.baseline = "deterministic foo\n";
  auto r = redist::analyze::run_analysis(sources, in_sync);
  EXPECT_TRUE(r.findings.empty())
      << redist::analyze::format_report(r.findings);
  EXPECT_EQ(r.contracts, "deterministic foo\n");

  Options removed;
  removed.baseline = "deterministic foo\ndeterministic gone\n";
  r = redist::analyze::run_analysis(sources, removed);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "contract-drift");
  EXPECT_TRUE(mentions(r.findings[0], "'deterministic gone'"));
  EXPECT_TRUE(mentions(r.findings[0], "no longer declared"));

  Options added;
  added.baseline = "# comment lines are ignored\n";
  r = redist::analyze::run_analysis(sources, added);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "contract-drift");
  EXPECT_EQ(r.findings[0].file, "src/kpbs/contract.hpp");
  EXPECT_TRUE(mentions(r.findings[0], "'deterministic foo'"));
  EXPECT_TRUE(mentions(r.findings[0], "not recorded"));

  Options missing;
  missing.require_baseline = true;
  r = redist::analyze::run_analysis(sources, missing);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "contract-drift");
  EXPECT_TRUE(mentions(r.findings[0], "--write-baseline"));
}

TEST(Analyze, RuleFilteringRunsOnlyRequestedRules) {
  Options only_tags;
  only_tags.rules = {"layer-tag"};
  const auto r = analyze_fixture(
      "layering",
      {"src/matching/up.hpp", "src/matching/guarded.hpp",
       "src/kpbs/sched.hpp"},
      only_tags);
  // The upward include would fire under `layering`, but that rule is off
  // and every fixture header carries a correct tag.
  EXPECT_TRUE(r.findings.empty())
      << redist::analyze::format_report(r.findings);
}

TEST(Analyze, UnknownRuleIsAnError) {
  Options options;
  options.rules = {"no-such-rule"};
  EXPECT_THROW(redist::analyze::run_analysis({}, options),
               std::runtime_error);
}

TEST(Analyze, RuleListingCoversEveryRule) {
  for (const auto& id : redist::analyze::rule_ids()) {
    EXPECT_FALSE(redist::analyze::rule_description(id).empty()) << id;
  }
  EXPECT_EQ(redist::analyze::rule_ids().size(), 11u);
}

TEST(Analyze, TusFromCompileCommandsStripsRootAndForeignEntries) {
  const auto tus = redist::analyze::tus_from_compile_commands(
      fixture_root("compile_commands.json"), "/repo");
  const std::vector<std::string> expected = {"src/kpbs/det.cpp",
                                             "tools/analyze/core.cpp"};
  EXPECT_EQ(tus, expected);
}

TEST(Analyze, LoadClosureChasesQuotedIncludes) {
  const auto sources = redist::analyze::load_closure(
      fixture_root("det"), {"src/kpbs/det.cpp"});
  std::vector<std::string> paths;
  for (const auto& s : sources) paths.push_back(s.path);
  const std::vector<std::string> expected = {"src/kpbs/det.cpp",
                                             "src/kpbs/det.hpp"};
  EXPECT_EQ(paths, expected);  // system + unresolvable includes dropped
}

TEST(Analyze, GoldenReportFormat) {
  const std::vector<SourceFile> sources = {
      {"src/kpbs/fixture.cpp",
       "namespace redist {\n"
       "void fixture_fn(G& g) {\n"
       "  solve_kpbs(g, 1, 2, 3);\n"
       "}\n"
       "}\n"}};
  const auto r = redist::analyze::run_analysis(sources, {});
  EXPECT_EQ(
      redist::analyze::format_report(r.findings),
      "src/kpbs/fixture.cpp:3: [deprecated-api] positional "
      "solve_kpbs(graph, k, beta, ...) was removed in favor of "
      "solve_kpbs(graph, SolverOptions{...}); the old overload must not "
      "be reintroduced\n");
}

}  // namespace
