#include "kpbs/solver.hpp"

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "kpbs/lower_bound.hpp"

namespace redist {
namespace {

TEST(Solver, AlgorithmNames) {
  EXPECT_EQ(algorithm_name(Algorithm::kGGP), "GGP");
  EXPECT_EQ(algorithm_name(Algorithm::kOGGP), "OGGP");
}

TEST(Solver, EmptyDemandGivesEmptySchedule) {
  BipartiteGraph g(3, 3);
  const Schedule s = solve_kpbs(g, {2, 1, Algorithm::kGGP}).schedule;
  EXPECT_EQ(s.step_count(), 0u);
  EXPECT_EQ(s.cost(1), 0);
}

TEST(Solver, SingleEdgeSingleStep) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 42);
  for (const Algorithm algo : {Algorithm::kGGP, Algorithm::kOGGP}) {
    const Schedule s = solve_kpbs(g, {1, 1, algo}).schedule;
    validate_schedule(g, s, 1);
    EXPECT_EQ(s.step_count(), 1u);
    EXPECT_EQ(s.total_transmission(), 42);
  }
}

TEST(Solver, DisjointPairsRunInParallelWhenKAllows) {
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0, 10);
  g.add_edge(1, 1, 10);
  g.add_edge(2, 2, 10);
  const Schedule s = solve_kpbs(g, {3, 1, Algorithm::kOGGP}).schedule;
  validate_schedule(g, s, 3);
  EXPECT_EQ(s.step_count(), 1u);
  EXPECT_EQ(s.steps()[0].size(), 3u);
}

TEST(Solver, KOneSerializesEverything) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 4);
  g.add_edge(1, 1, 6);
  const Schedule s = solve_kpbs(g, {1, 0, Algorithm::kGGP}).schedule;
  validate_schedule(g, s, 1);
  // With k = 1 every step carries one communication; total transmission is
  // the full P(G).
  EXPECT_EQ(s.total_transmission(), 10);
  EXPECT_EQ(s.max_step_width(), 1u);
}

TEST(Solver, KIsClampedToMinSide) {
  BipartiteGraph g(2, 5);
  for (NodeId j = 0; j < 5; ++j) g.add_edge(0, j, 2);
  const Schedule s = solve_kpbs(g, {100, 1, Algorithm::kGGP}).schedule;
  validate_schedule(g, s, 2);  // 1-port caps parallelism at min side anyway
}

TEST(Solver, BetaZeroAccepted) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 1, 3);
  const Schedule s = solve_kpbs(g, {2, 0, Algorithm::kOGGP}).schedule;
  validate_schedule(g, s, 2);
  EXPECT_EQ(s.cost(0), s.total_transmission());
}

TEST(Solver, NegativeBetaRejected) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 1);
  EXPECT_THROW(solve_kpbs(g, {1, -1, Algorithm::kGGP}).schedule, Error);
}

TEST(Solver, LargeBetaAvoidsPreemptingShortMessages) {
  // beta = 10 > every weight: normalization rounds all weights to one
  // beta-unit, so no communication is ever split.
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0, 4);
  g.add_edge(0, 1, 7);
  g.add_edge(1, 1, 2);
  g.add_edge(2, 2, 9);
  const Schedule s = solve_kpbs(g, {3, 10, Algorithm::kOGGP}).schedule;
  validate_schedule(g, s, 3);
  // Count fragments per pair: none may exceed 1.
  std::map<std::pair<NodeId, NodeId>, int> fragments;
  for (const Step& step : s.steps()) {
    for (const Communication& c : step.comms) {
      fragments[{c.sender, c.receiver}] += 1;
    }
  }
  for (const auto& [pair, n] : fragments) EXPECT_EQ(n, 1);
}

TEST(Solver, RealizedAmountsNeverExceedDemand) {
  // Weight 7 with beta 3 normalizes to 3 units = 9 > 7; the realized
  // schedule must still transfer exactly 7.
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 7);
  const Schedule s = solve_kpbs(g, {1, 3, Algorithm::kGGP}).schedule;
  validate_schedule(g, s, 1);
  EXPECT_EQ(s.total_amount(), 7);
}

TEST(Solver, EvaluationRatioAtLeastOne) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 5);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 0, 2);
  const Schedule s = solve_kpbs(g, {2, 1, Algorithm::kOGGP}).schedule;
  EXPECT_GE(evaluation_ratio(g, s, 2, 1), 1.0);
}

TEST(Solver, PerfectInstanceReachesRatioOne) {
  // A single permutation: one step, duration = weight; LB equals it.
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0, 5);
  g.add_edge(1, 1, 5);
  g.add_edge(2, 2, 5);
  const Schedule s = solve_kpbs(g, {3, 1, Algorithm::kOGGP}).schedule;
  EXPECT_DOUBLE_EQ(evaluation_ratio(g, s, 3, 1), 1.0);
}

TEST(Solver, OggpNeverWorseStepsOnLayeredInstance) {
  // Stacked permutations with distinct weights: OGGP recovers the layers.
  BipartiteGraph g(4, 4);
  const NodeId perm1[] = {0, 1, 2, 3};
  const NodeId perm2[] = {1, 2, 3, 0};
  for (NodeId i = 0; i < 4; ++i) g.add_edge(i, perm1[i], 10);
  for (NodeId i = 0; i < 4; ++i) g.add_edge(i, perm2[i], 3);
  const Schedule ggp = solve_kpbs(g, {4, 1, Algorithm::kGGP}).schedule;
  const Schedule oggp = solve_kpbs(g, {4, 1, Algorithm::kOGGP}).schedule;
  validate_schedule(g, ggp, 4);
  validate_schedule(g, oggp, 4);
  EXPECT_EQ(oggp.step_count(), 2u);
  EXPECT_LE(oggp.cost(1), ggp.cost(1));
}

TEST(Solver, ParallelEdgesInDemandAreScheduled) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 2);
  g.add_edge(0, 0, 3);
  const Schedule s = solve_kpbs(g, {1, 1, Algorithm::kGGP}).schedule;
  validate_schedule(g, s, 1);
  EXPECT_EQ(s.total_amount(), 5);
}

}  // namespace
}  // namespace redist
