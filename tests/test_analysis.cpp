#include "kpbs/analysis.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kpbs/solver.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

TEST(Analysis, EmptySchedule) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 1);
  const ScheduleAnalysis a = analyze_schedule(g, Schedule{}, 2);
  EXPECT_EQ(a.steps, 0u);
  EXPECT_EQ(a.total_amount, 0);
  EXPECT_DOUBLE_EQ(a.intra_step_waste, 0.0);
}

TEST(Analysis, UniformStepHasNoWaste) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 5);
  g.add_edge(1, 1, 5);
  Schedule s;
  s.add_step(Step{{{0, 0, 5}, {1, 1, 5}}});
  const ScheduleAnalysis a = analyze_schedule(g, s, 2);
  EXPECT_DOUBLE_EQ(a.intra_step_waste, 0.0);
  EXPECT_DOUBLE_EQ(a.slot_utilization, 1.0);
  EXPECT_DOUBLE_EQ(a.mean_step_width, 2.0);
  EXPECT_EQ(a.preempted_pairs, 0u);
  EXPECT_EQ(a.max_fragments, 1u);
}

TEST(Analysis, UnevenStepShowsWaste) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 8);
  g.add_edge(1, 1, 2);
  Schedule s;
  s.add_step(Step{{{0, 0, 8}, {1, 1, 2}}});
  const ScheduleAnalysis a = analyze_schedule(g, s, 2);
  // Capacity 16, amount 10: waste 6/16.
  EXPECT_NEAR(a.intra_step_waste, 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(a.slot_utilization, 10.0 / 16.0, 1e-12);
}

TEST(Analysis, CountsPreemption) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 9);
  Schedule s;
  s.add_step(Step{{{0, 0, 4}}});
  s.add_step(Step{{{0, 0, 5}}});
  const ScheduleAnalysis a = analyze_schedule(g, s, 1);
  EXPECT_EQ(a.preempted_pairs, 1u);
  EXPECT_EQ(a.max_fragments, 2u);
  EXPECT_EQ(a.max_sender_busy, 9);
  EXPECT_EQ(a.max_receiver_busy, 9);
}

TEST(Analysis, WrgpSchedulesHaveZeroIntraStepWaste) {
  // The defining property of WRGP steps: every communication spans its
  // whole step (uniform clamping), so intra-step waste is exactly 0 for
  // beta <= 1 (no rounding truncation).
  Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    RandomGraphConfig config;
    config.max_left = 8;
    config.max_right = 8;
    config.max_edges = 24;
    const BipartiteGraph g = random_bipartite(rng, config);
    const Schedule s = solve_kpbs(g, {3, 1, Algorithm::kOGGP}).schedule;
    const ScheduleAnalysis a = analyze_schedule(g, s, 3);
    ASSERT_NEAR(a.intra_step_waste, 0.0, 1e-12);
    ASSERT_LE(a.slot_utilization, 1.0 + 1e-12);
  }
}

TEST(Analysis, ToStringMentionsKeyFields) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 3);
  Schedule s;
  s.add_step(Step{{{0, 0, 3}}});
  const std::string text = analyze_schedule(g, s, 1).to_string();
  EXPECT_NE(text.find("1 steps"), std::string::npos);
  EXPECT_NE(text.find("slot utilization"), std::string::npos);
}

}  // namespace
}  // namespace redist
