#include <gtest/gtest.h>

#include "baselines/coloring.hpp"
#include "baselines/list_scheduling.hpp"
#include "baselines/naive.hpp"
#include "common/rng.hpp"
#include "kpbs/lower_bound.hpp"
#include "kpbs/regularize.hpp"
#include "kpbs/solver.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

TEST(ListScheduling, EmptyDemand) {
  BipartiteGraph g(2, 2);
  EXPECT_EQ(list_schedule(g, 2).step_count(), 0u);
}

TEST(ListScheduling, PacksDisjointCommsTogether) {
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0, 5);
  g.add_edge(1, 1, 4);
  g.add_edge(2, 2, 3);
  const Schedule s = list_schedule(g, 3);
  validate_schedule(g, s, 3);
  EXPECT_EQ(s.step_count(), 1u);
  EXPECT_EQ(s.steps()[0].duration(), 5);
}

TEST(ListScheduling, HonorsK) {
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0, 5);
  g.add_edge(1, 1, 4);
  g.add_edge(2, 2, 3);
  const Schedule s = list_schedule(g, 2);
  validate_schedule(g, s, 2);
  EXPECT_EQ(s.step_count(), 2u);
}

TEST(ListScheduling, NeverPreempts) {
  Rng rng(10);
  RandomGraphConfig config;
  config.max_left = 8;
  config.max_right = 8;
  config.max_edges = 24;
  for (int trial = 0; trial < 10; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const Schedule s = list_schedule(g, 4);
    validate_schedule(g, s, 4);
    // Each demand edge appears exactly once across all steps.
    std::size_t comms = 0;
    for (const Step& step : s.steps()) comms += step.size();
    EXPECT_EQ(comms, static_cast<std::size_t>(g.alive_edge_count()));
  }
}

TEST(NaiveMatching, CoversAllTraffic) {
  Rng rng(20);
  RandomGraphConfig config;
  config.max_left = 8;
  config.max_right = 8;
  config.max_edges = 24;
  for (int trial = 0; trial < 10; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 8));
    const Schedule s = naive_matching_schedule(g, k);
    validate_schedule(g, s, clamp_k(g, k));
  }
}

TEST(NaiveMatching, SingleMatchingIsOneStep) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 1, 7);
  g.add_edge(1, 0, 2);
  const Schedule s = naive_matching_schedule(g, 2);
  validate_schedule(g, s, 2);
  EXPECT_EQ(s.step_count(), 1u);
  EXPECT_EQ(s.steps()[0].duration(), 7);
}

TEST(Baselines, PeelingBeatsNaiveOnSkewedMatchings) {
  // A matching of very uneven weights: naive pays max per step; GGP's
  // uniform peeling plus preemption pays the same here, but once weights
  // interlock across nodes the gap opens. Construct an interlocked case.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 10);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, 1);
  g.add_edge(1, 1, 10);
  const Weight beta = 0;
  const Weight naive = naive_matching_schedule(g, 2).cost(beta);
  const Weight oggp = solve_kpbs(g, {2, beta, Algorithm::kOGGP}).schedule.cost(beta);
  EXPECT_LE(oggp, naive);
  EXPECT_EQ(oggp, 11);  // W(G) = 11 is optimal here
}

TEST(ColoringSchedule, EmptyDemand) {
  BipartiteGraph g(2, 2);
  EXPECT_EQ(coloring_schedule(g, 2).step_count(), 0u);
}

TEST(ColoringSchedule, MinimumStepsWhenKAtLeastDelta) {
  // K44 with unit-ish weights: Delta = 4 colors, each a perfect matching;
  // with k = 4 the schedule has exactly Delta = 4 steps — the SS/TDMA
  // minimum — which no valid schedule can beat.
  BipartiteGraph g(4, 4);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = 0; j < 4; ++j) g.add_edge(i, j, 1 + ((i + j) % 3));
  }
  const Schedule s = coloring_schedule(g, 4);
  validate_schedule(g, s, 4);
  EXPECT_EQ(s.step_count(), 4u);
}

TEST(ColoringSchedule, SplitsWideColorClassesByK) {
  BipartiteGraph g(4, 4);
  for (NodeId i = 0; i < 4; ++i) g.add_edge(i, i, 5);  // one color, 4 edges
  const Schedule s = coloring_schedule(g, 2);
  validate_schedule(g, s, 2);
  EXPECT_EQ(s.step_count(), 2u);
}

TEST(ColoringSchedule, ValidOnRandomInstances) {
  Rng rng(40);
  RandomGraphConfig config;
  config.max_left = 9;
  config.max_right = 9;
  config.max_edges = 30;
  for (int trial = 0; trial < 10; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 9));
    const Schedule s = coloring_schedule(g, k);
    validate_schedule(g, s, clamp_k(g, k));
    // Never fewer steps than the degree bound.
    EXPECT_GE(s.step_count(), static_cast<std::size_t>(g.max_degree()));
  }
}

TEST(Baselines, ApproximationAlgorithmsBeatBaselinesOnAverage) {
  // With beta = 0 preemption is free, so the peeling algorithms should
  // clearly beat both non-preemptive baselines. With beta = 1 the setup
  // cost taxes OGGP's extra steps; the paper's regime (weights >> beta)
  // still keeps it at worst on par, so allow a 2% band there.
  Rng rng(30);
  RandomGraphConfig config;
  config.max_left = 10;
  config.max_right = 10;
  config.max_edges = 40;
  for (const Weight beta : {Weight{0}, Weight{1}}) {
    double list_total = 0;
    double naive_total = 0;
    double oggp_total = 0;
    for (int trial = 0; trial < 30; ++trial) {
      const BipartiteGraph g = random_bipartite(rng, config);
      const int k = static_cast<int>(rng.uniform_int(1, 10));
      list_total += static_cast<double>(list_schedule(g, k).cost(beta));
      naive_total +=
          static_cast<double>(naive_matching_schedule(g, k).cost(beta));
      oggp_total += static_cast<double>(
          solve_kpbs(g, {k, beta, Algorithm::kOGGP}).schedule.cost(beta));
    }
    const double slack = (beta == 0) ? 1.0 : 1.02;
    EXPECT_LE(oggp_total, list_total * slack) << "beta=" << beta;
    EXPECT_LE(oggp_total, naive_total * slack) << "beta=" << beta;
    if (beta == 0) {
      // Strictly better in aggregate when preemption is free.
      EXPECT_LT(oggp_total, naive_total);
    }
  }
}

}  // namespace
}  // namespace redist
