#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>

#include "obs/export.hpp"

namespace redist::obs {
namespace {

// Deterministic clock: every TraceSession::now() call advances exactly
// 1000 ns, so span begin/duration values are pinned and the exported
// microsecond strings are exact.
std::function<std::uint64_t()> counter_clock() {
  auto ticks = std::make_shared<std::uint64_t>(0);
  return [ticks] { return 1000 * (*ticks)++; };
}

TEST(ObsTrace, SpansRecordBeginAndDuration) {
  TraceSession session(counter_clock());
  {
    TraceSpan outer(&session, "outer");
    {
      TraceSpan inner(&session, "inner");
      inner.arg("x", 7);
    }
  }
  const auto events = session.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner first (ts 1000, dur 1000), then outer
  // (ts 0, dur 3000 — clock calls at ticks 0 and 3).
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].ts_ns, 1000u);
  EXPECT_EQ(events[0].dur_ns, 1000u);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].ts_ns, 0u);
  EXPECT_EQ(events[1].dur_ns, 3000u);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "x");
  EXPECT_EQ(events[0].args[0].json_value, "7");
}

TEST(ObsTrace, NullSessionIsNoOp) {
  TraceSpan span(nullptr, "nothing");
  EXPECT_FALSE(static_cast<bool>(span));
  span.arg("k", 1);
  span.arg("s", std::string_view("v"));
  // Nothing to assert beyond "does not crash": no session exists.
}

TEST(ObsTrace, ArgRenderingCoversJsonTokenKinds) {
  TraceSession session(counter_clock());
  {
    TraceSpan span(&session, "args");
    span.arg("i", -3);
    span.arg("u", std::uint64_t{18});
    span.arg("b", true);
    span.arg("d", 2.5);
    span.arg("s", std::string_view("quote\"back\\slash\nnewline"));
  }
  const auto events = session.snapshot();
  ASSERT_EQ(events.size(), 1u);
  const auto& args = events[0].args;
  ASSERT_EQ(args.size(), 5u);
  EXPECT_EQ(args[0].json_value, "-3");
  EXPECT_EQ(args[1].json_value, "18");
  EXPECT_EQ(args[2].json_value, "true");
  EXPECT_EQ(args[3].json_value, "2.5");
  EXPECT_EQ(args[4].json_value, "\"quote\\\"back\\\\slash\\nnewline\"");
}

TEST(ObsTrace, JsonHelpers) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(0.0), "0");
  // Non-finite values have no JSON spelling; they degrade to 0.
  EXPECT_EQ(json_number(std::nan("")), "0");
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_quote(std::string_view("ctl\x01", 4)), "\"ctl\\u0001\"");
}

// Golden exporter output: with the injected clock and a single thread the
// Chrome trace is byte-for-byte deterministic (tids renumbered densely,
// events stably sorted by begin time with outermost-first tie-breaks).
TEST(ObsTrace, ChromeTraceGoldenOutput) {
  TraceSession session(counter_clock());
  {
    TraceSpan outer(&session, "solve", "kpbs");
    outer.arg("k", 4);
    {
      TraceSpan inner(&session, "step", "kpbs");
      inner.arg("amount", 2);
      inner.arg("seed_hit", false);
    }
  }
  std::ostringstream os;
  write_chrome_trace(os, session);
  const std::string expected =
      "{\n"
      "\"displayTimeUnit\": \"ms\",\n"
      "\"traceEvents\": [\n"
      "{\"name\": \"solve\", \"cat\": \"kpbs\", \"ph\": \"X\", "
      "\"ts\": 0.000, \"dur\": 3.000, \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"k\": 4}},\n"
      "{\"name\": \"step\", \"cat\": \"kpbs\", \"ph\": \"X\", "
      "\"ts\": 1.000, \"dur\": 1.000, \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"amount\": 2, \"seed_hit\": false}}\n"
      "]\n"
      "}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ObsTrace, ExporterOrdersByBeginTimeAcrossThreads) {
  TraceSession session(counter_clock());
  // Record two sibling spans out of begin order (the second span begins
  // earlier on the injected clock because we construct it first... cannot
  // reorder construction, so record events directly).
  TraceEvent late;
  late.name = "late";
  late.cat = "t";
  late.ts_ns = 5000;
  late.dur_ns = 100;
  late.tid = 77;
  TraceEvent early;
  early.name = "early";
  early.cat = "t";
  early.ts_ns = 2000;
  early.dur_ns = 100;
  early.tid = 99;
  session.record(std::move(late));
  session.record(std::move(early));

  std::ostringstream os;
  write_chrome_trace(os, session);
  const std::string json = os.str();
  const auto early_at = json.find("\"early\"");
  const auto late_at = json.find("\"late\"");
  ASSERT_NE(early_at, std::string::npos);
  ASSERT_NE(late_at, std::string::npos);
  EXPECT_LT(early_at, late_at);
  // Dense tid renumbering by first appearance: 99 -> 0, 77 -> 1.
  EXPECT_NE(json.find("\"early\", \"cat\": \"t\", \"ph\": \"X\", \"ts\": "
                      "2.000, \"dur\": 0.100, \"pid\": 1, \"tid\": 0"),
            std::string::npos);
  EXPECT_NE(json.find("\"late\", \"cat\": \"t\", \"ph\": \"X\", \"ts\": "
                      "5.000, \"dur\": 0.100, \"pid\": 1, \"tid\": 1"),
            std::string::npos);
}

}  // namespace
}  // namespace redist::obs
