#include "workload/patterns.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kpbs/lower_bound.hpp"
#include "kpbs/solver.hpp"

namespace redist {
namespace {

TEST(Patterns, HotspotConcentratesTraffic) {
  Rng rng(1);
  const TrafficMatrix m = hotspot_traffic(rng, 6, 6, 2, 0.7, 100'000);
  Bytes hot = 0;
  for (NodeId i = 0; i < 6; ++i) hot += m.at(i, 2);
  EXPECT_GT(hot, m.total() / 2);
  // Every sender ships roughly its configured volume (cold jitter only
  // shrinks it).
  for (NodeId i = 0; i < 6; ++i) {
    Bytes row = 0;
    for (NodeId j = 0; j < 6; ++j) row += m.at(i, j);
    EXPECT_LE(row, 100'000);
    EXPECT_GT(row, 60'000);
  }
}

TEST(Patterns, HotspotValidation) {
  Rng rng(2);
  EXPECT_THROW(hotspot_traffic(rng, 2, 2, 5, 0.5, 100), Error);
  EXPECT_THROW(hotspot_traffic(rng, 2, 2, 0, 0.0, 100), Error);
  EXPECT_THROW(hotspot_traffic(rng, 2, 2, 0, 1.0, 100), Error);
  EXPECT_THROW(hotspot_traffic(rng, 2, 2, 0, 0.5, 0), Error);
}

TEST(Patterns, HotspotStressesSingleReceiverBound) {
  // With a hot receiver, W(G) concentrates there; the scheduler must still
  // produce a feasible schedule whose cost tracks the lower bound.
  Rng rng(3);
  const TrafficMatrix m = hotspot_traffic(rng, 8, 8, 0, 0.8, 1'000'000);
  const BipartiteGraph g = m.to_graph(100'000.0);
  const Schedule s = solve_kpbs(g, {4, 1, Algorithm::kOGGP}).schedule;
  validate_schedule(g, s, 4);
  EXPECT_LE(Rational(s.cost(1)),
            Rational(2) * kpbs_lower_bound(g, 4, 1).value());
}

TEST(Patterns, PermutationIsOneToOne) {
  Rng rng(4);
  const TrafficMatrix m = permutation_traffic(rng, 10, 100, 200);
  for (NodeId i = 0; i < 10; ++i) {
    int row_nonzero = 0;
    for (NodeId j = 0; j < 10; ++j) row_nonzero += (m.at(i, j) > 0);
    EXPECT_EQ(row_nonzero, 1);
  }
  for (NodeId j = 0; j < 10; ++j) {
    int col_nonzero = 0;
    for (NodeId i = 0; i < 10; ++i) col_nonzero += (m.at(i, j) > 0);
    EXPECT_EQ(col_nonzero, 1);
  }
}

TEST(Patterns, PermutationSchedulesInOneStep) {
  Rng rng(5);
  const TrafficMatrix m = permutation_traffic(rng, 6, 50'000, 50'000);
  const BipartiteGraph g = m.to_graph(50'000.0);
  const Schedule s = solve_kpbs(g, {6, 1, Algorithm::kOGGP}).schedule;
  validate_schedule(g, s, 6);
  EXPECT_EQ(s.step_count(), 1u);
}

TEST(Patterns, BandedCoversEveryRowOnce) {
  const std::int64_t rows = 1000;
  const TrafficMatrix m = banded_traffic(rows, 8, 5, 3);
  EXPECT_EQ(m.total(), rows * 8);
  // Each sender touches a contiguous window of receivers.
  for (NodeId i = 0; i < 5; ++i) {
    NodeId first = -1;
    NodeId last = -1;
    for (NodeId j = 0; j < 3; ++j) {
      if (m.at(i, j) > 0) {
        if (first == -1) first = j;
        last = j;
      }
    }
    ASSERT_NE(first, -1);
    for (NodeId j = first; j <= last; ++j) EXPECT_GT(m.at(i, j), 0);
  }
}

TEST(Patterns, ZipfIsHeavyTailed) {
  Rng rng(6);
  const TrafficMatrix m = zipf_traffic(rng, 8, 8, 1'000'000, 1.2);
  Bytes biggest = 0;
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = 0; j < 8; ++j) biggest = std::max(biggest, m.at(i, j));
  }
  EXPECT_EQ(biggest, 1'000'000);  // rank-1 pair gets the full size
  // Heavy tail: the top pair alone carries a large share of the volume and
  // most pairs are tiny compared to it.
  EXPECT_GT(biggest * 5, m.total());
  int tiny = 0;
  int nonzero = 0;
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = 0; j < 8; ++j) {
      if (m.at(i, j) > 0) {
        ++nonzero;
        tiny += (m.at(i, j) < biggest / 20);
      }
    }
  }
  EXPECT_GT(tiny * 2, nonzero);
}

TEST(Patterns, ZipfSchedulesValidly) {
  Rng rng(7);
  const TrafficMatrix m = zipf_traffic(rng, 8, 8, 1'000'000, 1.0);
  const BipartiteGraph g = m.to_graph(10'000.0);
  for (const Algorithm algo : {Algorithm::kGGP, Algorithm::kOGGP}) {
    const Schedule s = solve_kpbs(g, {3, 1, algo}).schedule;
    validate_schedule(g, s, 3);
  }
}

}  // namespace
}  // namespace redist
