#include "kpbs/wrgp.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "matching/hungarian.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

TEST(Wrgp, RejectsUnequalSides) {
  BipartiteGraph g(1, 2);
  g.add_edge(0, 0, 1);
  EXPECT_THROW(wrgp_peel(g, arbitrary_perfect_matching), Error);
}

TEST(Wrgp, RejectsIrregularGraph) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 3);
  g.add_edge(1, 1, 4);
  EXPECT_THROW(wrgp_peel(g, arbitrary_perfect_matching), Error);
}

TEST(Wrgp, EmptyGraphPeelsToNothing) {
  BipartiteGraph g(0, 0);
  EXPECT_TRUE(wrgp_peel(g, arbitrary_perfect_matching).empty());
}

TEST(Wrgp, SinglePermutationPeelsInOneStep) {
  BipartiteGraph g(3, 3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 5);
  g.add_edge(2, 0, 5);
  const auto steps = wrgp_peel(g, arbitrary_perfect_matching);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].amount, 5);
  EXPECT_EQ(steps[0].matching.size(), 3u);
  EXPECT_TRUE(g.empty());
}

TEST(Wrgp, PaperFigureFourShape) {
  // Two overlaid permutations with different weights peel in two steps of
  // the two permutation weights (order may vary by strategy).
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 3);
  g.add_edge(1, 1, 3);
  g.add_edge(0, 1, 7);
  g.add_edge(1, 0, 7);
  const auto steps = wrgp_peel(g, arbitrary_perfect_matching);
  ASSERT_EQ(steps.size(), 2u);
  Weight total = 0;
  for (const auto& s : steps) total += s.amount;
  EXPECT_EQ(total, 10);  // regular weight c = 10
  EXPECT_TRUE(g.empty());
}

TEST(Wrgp, PreemptionSplitsUnevenEdges) {
  // c = 8 everywhere but the edges within a perfect matching differ
  // (5 with 3's partner): the 5-edges must be preempted across steps.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 5);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 0, 3);
  g.add_edge(1, 1, 5);
  const auto steps = wrgp_peel(g, arbitrary_perfect_matching);
  EXPECT_TRUE(g.empty());
  Weight total = 0;
  for (const auto& s : steps) total += s.amount;
  EXPECT_EQ(total, 8);
  // The diagonal matching {5,5} and anti-diagonal {3,3} need two steps;
  // a mixed matching {5,3} forces a third. Either way 2 <= steps <= 3.
  EXPECT_GE(steps.size(), 2u);
  EXPECT_LE(steps.size(), 3u);
}

class WrgpRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WrgpRandom, PeelsRegularGraphsCompletely) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId n = static_cast<NodeId>(rng.uniform_int(2, 12));
    const int layers = static_cast<int>(rng.uniform_int(1, 6));
    BipartiteGraph g = random_weight_regular(rng, n, layers, 1, 9);
    Weight c = 0;
    ASSERT_TRUE(g.is_weight_regular(&c));
    const EdgeId m_before = g.alive_edge_count();

    const auto steps = wrgp_peel(g, arbitrary_perfect_matching);
    EXPECT_TRUE(g.empty());
    // Step amounts sum to the regular weight (each node busy every step).
    Weight total = 0;
    for (const auto& s : steps) {
      total += s.amount;
      EXPECT_GT(s.amount, 0);
      EXPECT_EQ(s.matching.size(), static_cast<std::size_t>(n));
    }
    EXPECT_EQ(total, c);
    // At most one step per edge (each step kills at least one edge).
    EXPECT_LE(steps.size(), static_cast<std::size_t>(m_before));
  }
}

TEST_P(WrgpRandom, BottleneckStrategyNeverMoreStepsOnPermutationStacks) {
  // On stacked permutations, bottleneck matching recovers the layer
  // structure; arbitrary matchings may need more steps.
  Rng rng(GetParam() ^ 0xABCD);
  for (int trial = 0; trial < 5; ++trial) {
    const NodeId n = static_cast<NodeId>(rng.uniform_int(3, 10));
    BipartiteGraph g1 = random_weight_regular(rng, n, 3, 1, 20);
    BipartiteGraph g2 = g1;  // deep copy
    const auto arbitrary = wrgp_peel(g1, arbitrary_perfect_matching);
    const auto bottleneck = wrgp_peel(g2, bottleneck_perfect_matching);
    Weight ta = 0;
    Weight tb = 0;
    for (const auto& s : arbitrary) ta += s.amount;
    for (const auto& s : bottleneck) tb += s.amount;
    EXPECT_EQ(ta, tb);  // both must sum to c
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WrgpRandom, ::testing::Values(3, 5, 8, 13));

TEST(Wrgp, AllThreeStrategiesPeelTheSameRegularGraph) {
  Rng rng(77);
  const BipartiteGraph base = random_weight_regular(rng, 8, 4, 1, 12);
  Weight c = 0;
  ASSERT_TRUE(base.is_weight_regular(&c));
  for (const PerfectMatchingStrategy& strategy :
       {PerfectMatchingStrategy(arbitrary_perfect_matching),
        PerfectMatchingStrategy(bottleneck_perfect_matching),
        PerfectMatchingStrategy(max_weight_perfect_matching)}) {
    BipartiteGraph g = base;
    const auto steps = wrgp_peel(g, strategy);
    EXPECT_TRUE(g.empty());
    Weight total = 0;
    for (const auto& s : steps) total += s.amount;
    EXPECT_EQ(total, c);  // transmission is strategy-independent
  }
}

}  // namespace
}  // namespace redist
