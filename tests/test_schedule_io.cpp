#include "kpbs/schedule_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "kpbs/solver.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

TEST(ScheduleIo, RoundTripSimple) {
  Schedule s;
  s.add_step(Step{{{0, 1, 5}, {2, 0, 3}}});
  s.add_step(Step{{{1, 1, 7}}});
  const Schedule r = schedule_from_string(schedule_to_string(s));
  ASSERT_EQ(r.step_count(), 2u);
  EXPECT_EQ(r.steps()[0].comms.size(), 2u);
  EXPECT_EQ(r.steps()[0].comms[1].sender, 2);
  EXPECT_EQ(r.steps()[1].comms[0].amount, 7);
  EXPECT_EQ(r.cost(1), s.cost(1));
}

TEST(ScheduleIo, EmptySchedule) {
  const Schedule r = schedule_from_string(schedule_to_string(Schedule{}));
  EXPECT_EQ(r.step_count(), 0u);
}

TEST(ScheduleIo, MalformedHeader) {
  std::istringstream is("not-a-schedule 2");
  EXPECT_THROW(read_schedule(is), Error);
}

TEST(ScheduleIo, TruncatedBody) {
  std::istringstream is("schedule 1\nstep 2\n0 0 1\n");
  EXPECT_THROW(read_schedule(is), Error);
}

TEST(ScheduleIo, SolverOutputSurvivesRoundTrip) {
  Rng rng(77);
  RandomGraphConfig config;
  config.max_left = 8;
  config.max_right = 8;
  config.max_edges = 20;
  for (int trial = 0; trial < 10; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const Schedule s = solve_kpbs(g, {3, 1, Algorithm::kOGGP}).schedule;
    const Schedule r = schedule_from_string(schedule_to_string(s));
    // The round-tripped schedule must still validate against the demand.
    validate_schedule(g, r, 3);
    ASSERT_EQ(r.cost(1), s.cost(1));
    ASSERT_EQ(r.step_count(), s.step_count());
  }
}

}  // namespace
}  // namespace redist
