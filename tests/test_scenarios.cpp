// Scenario-matrix tests (workload/scenario.hpp + robust/storm.hpp): spec
// validation, bit-determinism of materialization, per-family structural
// properties, serialization round-trips, the builtin matrix the sweep
// harness keys on, and storm-rule expansion.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/math.hpp"
#include "robust/storm.hpp"
#include "workload/scenario.hpp"

namespace redist {
namespace {

ScenarioSpec builtin(const std::string& name, double scale = 1.0) {
  for (const ScenarioSpec& spec : builtin_scenarios(scale)) {
    if (spec.name == name) return spec;
  }
  throw Error("no builtin scenario named " + name);
}

TEST(ScenarioKindNames, RoundTrip) {
  for (const ScenarioKind kind :
       {ScenarioKind::kUniform, ScenarioKind::kHeterogeneous,
        ScenarioKind::kAsymmetric, ScenarioKind::kHotspot,
        ScenarioKind::kSparseGiant, ScenarioKind::kFaultStorm}) {
    EXPECT_EQ(parse_scenario_kind(scenario_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_scenario_kind("bogus"), Error);
}

TEST(ScenarioSpecValidate, RejectsOutOfDomainFields) {
  const ScenarioSpec good;
  EXPECT_NO_THROW(good.validate());

  ScenarioSpec s = good;
  s.name = "";
  EXPECT_THROW(s.validate(), Error);
  s = good;
  s.name = "Has Spaces!";
  EXPECT_THROW(s.validate(), Error);
  s = good;
  s.senders = 0;
  EXPECT_THROW(s.validate(), Error);
  s = good;
  s.edges = -1;
  EXPECT_THROW(s.validate(), Error);
  s = good;
  s.edges = s.senders * s.receivers + 1;
  EXPECT_THROW(s.validate(), Error);
  s = good;
  s.min_bytes = 0;
  EXPECT_THROW(s.validate(), Error);
  s = good;
  s.max_bytes = s.min_bytes - 1;
  EXPECT_THROW(s.validate(), Error);
  s = good;
  s.bytes_per_unit = 0;
  EXPECT_THROW(s.validate(), Error);
  s = good;
  s.k = 0;
  EXPECT_THROW(s.validate(), Error);
  s = good;
  s.beta = -1;
  EXPECT_THROW(s.validate(), Error);
  s = good;
  s.hot_share = 1.0;
  EXPECT_THROW(s.validate(), Error);
  s = good;
  s.het_spread = 0.5;
  EXPECT_THROW(s.validate(), Error);
  s = good;
  s.storm_intensity = 1.5;
  EXPECT_THROW(s.validate(), Error);
}

TEST(ScenarioMaterialize, BitDeterministicForFixedSpec) {
  for (const ScenarioSpec& spec : builtin_scenarios(0.1)) {
    const ScenarioWorkload a = materialize_scenario(spec);
    const ScenarioWorkload b = materialize_scenario(spec);
    ASSERT_EQ(a.traffic.total(), b.traffic.total()) << spec.name;
    for (NodeId i = 0; i < spec.senders; ++i) {
      for (NodeId j = 0; j < spec.receivers; ++j) {
        ASSERT_EQ(a.traffic.at(i, j), b.traffic.at(i, j))
            << spec.name << " pair " << i << "->" << j;
      }
    }
    ASSERT_EQ(a.demand.edge_count(), b.demand.edge_count()) << spec.name;
    for (EdgeId e = 0; e < a.demand.edge_count(); ++e) {
      ASSERT_EQ(a.demand.edge(e).left, b.demand.edge(e).left);
      ASSERT_EQ(a.demand.edge(e).right, b.demand.edge(e).right);
      ASSERT_EQ(a.demand.edge(e).weight, b.demand.edge(e).weight);
    }
    ASSERT_EQ(a.t1_scale, b.t1_scale) << spec.name;
    ASSERT_EQ(a.t2_scale, b.t2_scale) << spec.name;
  }
}

TEST(ScenarioMaterialize, SeedChangesTheInstance) {
  ScenarioSpec spec = builtin("uniform", 0.5);
  const ScenarioWorkload a = materialize_scenario(spec);
  spec.seed += 1;
  const ScenarioWorkload b = materialize_scenario(spec);
  bool any_diff = false;
  for (NodeId i = 0; i < spec.senders && !any_diff; ++i) {
    for (NodeId j = 0; j < spec.receivers && !any_diff; ++j) {
      any_diff = a.traffic.at(i, j) != b.traffic.at(i, j);
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(ScenarioMaterialize, DemandMirrorsTrafficWithCeilWeights) {
  for (const ScenarioSpec& spec : builtin_scenarios(0.1)) {
    const ScenarioWorkload w = materialize_scenario(spec);
    std::size_t nonzero = 0;
    for (NodeId i = 0; i < spec.senders; ++i) {
      for (NodeId j = 0; j < spec.receivers; ++j) {
        if (w.traffic.at(i, j) > 0) ++nonzero;
      }
    }
    ASSERT_EQ(w.demand.edge_count(), nonzero) << spec.name;
    for (EdgeId e = 0; e < w.demand.edge_count(); ++e) {
      const Edge& edge = w.demand.edge(e);
      const Bytes bytes = w.traffic.at(edge.left, edge.right);
      ASSERT_GT(bytes, 0) << spec.name;
      ASSERT_GE(edge.weight, 1) << spec.name;
      if (w.t1_scale.empty()) {
        ASSERT_EQ(edge.weight, ceil_div(bytes, spec.bytes_per_unit))
            << spec.name << " pair " << edge.left << "->" << edge.right;
      }
    }
  }
}

TEST(ScenarioFamilies, HeterogeneousScalesStayWithinSpread) {
  const ScenarioSpec spec = builtin("heterogeneous", 0.5);
  const ScenarioWorkload w = materialize_scenario(spec);
  ASSERT_EQ(w.t1_scale.size(), static_cast<std::size_t>(spec.senders));
  ASSERT_EQ(w.t2_scale.size(), static_cast<std::size_t>(spec.receivers));
  const double lo = 1.0 / std::sqrt(spec.het_spread) - 1e-9;
  const double hi = std::sqrt(spec.het_spread) + 1e-9;
  for (const std::vector<double>* scales : {&w.t1_scale, &w.t2_scale}) {
    for (const double s : *scales) {
      ASSERT_GE(s, lo);
      ASSERT_LE(s, hi);
    }
  }
  // The weights must actually carry the heterogeneity: a slower pair gets a
  // proportionally longer duration than the homogeneous ceil would.
  bool any_slowed = false;
  for (EdgeId e = 0; e < w.demand.edge_count(); ++e) {
    const Edge& edge = w.demand.edge(e);
    const double speed =
        std::min(w.t1_scale[static_cast<std::size_t>(edge.left)],
                 w.t2_scale[static_cast<std::size_t>(edge.right)]);
    const Bytes bytes = w.traffic.at(edge.left, edge.right);
    const Weight expect = std::max<Weight>(
        1, static_cast<Weight>(std::ceil(
               static_cast<double>(bytes) /
               (static_cast<double>(spec.bytes_per_unit) * speed))));
    ASSERT_EQ(edge.weight, expect);
    if (edge.weight > ceil_div(bytes, spec.bytes_per_unit)) any_slowed = true;
  }
  EXPECT_TRUE(any_slowed);
}

TEST(ScenarioFamilies, AsymmetricClusterIsConsolidationShaped) {
  const ScenarioSpec spec = builtin("asymmetric");
  EXPECT_GE(spec.senders, 4 * spec.receivers);
  const ScenarioWorkload w = materialize_scenario(spec);
  EXPECT_EQ(w.traffic.senders(), spec.senders);
  EXPECT_EQ(w.traffic.receivers(), spec.receivers);
}

TEST(ScenarioFamilies, HotspotConcentratesTrafficOnOneReceiver) {
  const ScenarioSpec spec = builtin("hotspot", 0.5);
  const ScenarioWorkload w = materialize_scenario(spec);
  Bytes total = 0;
  Bytes hottest = 0;
  for (NodeId j = 0; j < spec.receivers; ++j) {
    Bytes col = 0;
    for (NodeId i = 0; i < spec.senders; ++i) col += w.traffic.at(i, j);
    total += col;
    hottest = std::max(hottest, col);
  }
  ASSERT_GT(total, 0);
  // hot_share = 0.8; allow sampling slack but require real concentration.
  EXPECT_GE(static_cast<double>(hottest),
            0.6 * static_cast<double>(total));
}

TEST(ScenarioFamilies, SparseGiantHitsEdgeTargetAndStaysSparse) {
  const ScenarioSpec spec = builtin("sparse_giant", 0.25);
  const ScenarioWorkload w = materialize_scenario(spec);
  ASSERT_EQ(w.demand.edge_count(), static_cast<EdgeId>(spec.edges));
  const double density =
      static_cast<double>(spec.edges) /
      (static_cast<double>(spec.senders) * static_cast<double>(spec.receivers));
  EXPECT_LT(density, 0.05);
  EXPECT_GT(spec.edges, spec.senders);  // m >> n regime, scaled
}

TEST(ScenarioSerialization, RoundTripsEveryBuiltin) {
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    const std::string text = scenario_to_string(spec);
    const ScenarioSpec back = scenario_from_string(text);
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.kind, spec.kind);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.senders, spec.senders);
    EXPECT_EQ(back.receivers, spec.receivers);
    EXPECT_EQ(back.edges, spec.edges);
    EXPECT_EQ(back.min_bytes, spec.min_bytes);
    EXPECT_EQ(back.max_bytes, spec.max_bytes);
    EXPECT_EQ(back.bytes_per_unit, spec.bytes_per_unit);
    EXPECT_EQ(back.k, spec.k);
    EXPECT_EQ(back.beta, spec.beta);
    EXPECT_DOUBLE_EQ(back.hot_share, spec.hot_share);
    EXPECT_DOUBLE_EQ(back.het_spread, spec.het_spread);
    EXPECT_DOUBLE_EQ(back.storm_intensity, spec.storm_intensity);
    // Serialized form is a fixed point.
    EXPECT_EQ(scenario_to_string(back), text);
  }
}

TEST(ScenarioBuiltins, MatrixCoversTheAdversarialFamilies) {
  const std::vector<ScenarioSpec> specs = builtin_scenarios();
  ASSERT_GE(specs.size(), 5u);
  std::set<std::string> names;
  std::set<std::uint64_t> seeds;
  std::set<ScenarioKind> kinds;
  for (const ScenarioSpec& spec : specs) {
    EXPECT_NO_THROW(spec.validate()) << spec.name;
    names.insert(spec.name);
    seeds.insert(spec.seed);
    kinds.insert(spec.kind);
  }
  EXPECT_EQ(names.size(), specs.size());  // unique output file names
  EXPECT_EQ(seeds.size(), specs.size());  // no accidental instance reuse
  for (const ScenarioKind kind :
       {ScenarioKind::kHeterogeneous, ScenarioKind::kAsymmetric,
        ScenarioKind::kHotspot, ScenarioKind::kSparseGiant,
        ScenarioKind::kFaultStorm}) {
    EXPECT_TRUE(kinds.count(kind)) << scenario_kind_name(kind);
  }
}

TEST(ScenarioBuiltins, ScaleShrinksSizesButKeepsNames) {
  const std::vector<ScenarioSpec> full = builtin_scenarios(1.0);
  const std::vector<ScenarioSpec> smoke = builtin_scenarios(0.25);
  ASSERT_EQ(full.size(), smoke.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].name, smoke[i].name);
    EXPECT_EQ(full[i].seed, smoke[i].seed);
    EXPECT_LE(smoke[i].senders, full[i].senders);
    EXPECT_LE(smoke[i].receivers, full[i].receivers);
  }
  // sparse_giant genuinely shrinks (fault_storm is pinned small by design).
  EXPECT_LT(builtin("sparse_giant", 0.25).senders,
            builtin("sparse_giant", 1.0).senders);
  EXPECT_THROW(builtin_scenarios(0.0), Error);
  EXPECT_THROW(builtin_scenarios(1.5), Error);
}

TEST(StormRules, ZeroIntensityExpandsToNothing) {
  robust::StormProfile calm;
  calm.intensity = 0.0;
  EXPECT_TRUE(robust::storm_rules(calm).empty());
  robust::StormProfile bad;
  bad.intensity = 1.5;
  EXPECT_THROW(robust::storm_rules(bad), Error);
}

TEST(StormRules, ExpandsEveryFaultClassWithBoundedCounts) {
  robust::StormProfile profile;
  profile.intensity = 0.3;
  const std::vector<robust::FaultRule> rules = robust::storm_rules(profile);
  ASSERT_EQ(rules.size(), 4u);
  std::set<robust::FaultKind> kinds;
  for (const robust::FaultRule& rule : rules) {
    kinds.insert(rule.kind);
    EXPECT_DOUBLE_EQ(rule.probability, profile.intensity);
    switch (rule.kind) {
      case robust::FaultKind::kConnectRefuse:
        EXPECT_EQ(rule.site, robust::FaultSite::kConnect);
        EXPECT_EQ(rule.count, profile.connect_refusals);
        break;
      case robust::FaultKind::kReset:
        EXPECT_EQ(rule.site, robust::FaultSite::kSend);
        EXPECT_EQ(rule.begin, profile.data_phase_begin);
        EXPECT_EQ(rule.count, 1u);  // at most one mid-flight cut per storm
        EXPECT_EQ(rule.at_bytes, profile.reset_after_bytes);
        break;
      case robust::FaultKind::kStall:
        EXPECT_EQ(rule.site, robust::FaultSite::kRecv);
        EXPECT_EQ(rule.begin, profile.data_phase_begin);
        EXPECT_EQ(rule.count, 1u);
        EXPECT_DOUBLE_EQ(rule.stall_ms, profile.stall_ms);
        break;
      case robust::FaultKind::kShortWrite:
        EXPECT_EQ(rule.site, robust::FaultSite::kSend);
        EXPECT_EQ(rule.begin, 0u);
        EXPECT_EQ(rule.count, profile.horizon);
        EXPECT_EQ(rule.chunk_cap, profile.short_write_cap);
        break;
    }
  }
  EXPECT_EQ(kinds.size(), 4u);
}

TEST(StormRules, ArmStormInjectsDeterministically) {
  robust::StormProfile profile;
  profile.intensity = 1.0;  // every eligible op fires
  profile.connect_refusals = 1;
  robust::FaultInjector injector(77);
  robust::arm_storm(injector, profile);
  const robust::FaultPlan first = injector.plan_op(robust::FaultSite::kConnect);
  EXPECT_TRUE(first.refuse);
  const robust::FaultPlan second =
      injector.plan_op(robust::FaultSite::kConnect);
  EXPECT_FALSE(second.refuse);  // refusal budget exhausted
  const robust::FaultPlan send = injector.plan_op(robust::FaultSite::kSend);
  EXPECT_EQ(send.chunk_cap, profile.short_write_cap);
  EXPECT_FALSE(send.reset);  // data phase has not begun
  EXPECT_GE(injector.injected_count(), 2u);
}

}  // namespace
}  // namespace redist
