#include "kpbs/schedule.hpp"

#include <gtest/gtest.h>

namespace redist {
namespace {

BipartiteGraph demand_2x2() {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 3);
  g.add_edge(1, 1, 5);
  return g;
}

Schedule good_schedule() {
  Schedule s;
  s.add_step(Step{{{0, 0, 3}, {1, 1, 2}}});
  s.add_step(Step{{{1, 1, 3}}});  // preempted remainder of the 5
  return s;
}

TEST(Schedule, CostAccounting) {
  const Schedule s = good_schedule();
  EXPECT_EQ(s.step_count(), 2u);
  EXPECT_EQ(s.steps()[0].duration(), 3);
  EXPECT_EQ(s.steps()[1].duration(), 3);
  EXPECT_EQ(s.total_transmission(), 6);
  EXPECT_EQ(s.cost(0), 6);
  EXPECT_EQ(s.cost(2), 10);
  EXPECT_EQ(s.total_amount(), 8);
  EXPECT_EQ(s.max_step_width(), 2u);
}

TEST(Schedule, NegativeBetaRejected) {
  EXPECT_THROW(good_schedule().cost(-1), Error);
}

TEST(Schedule, ValidSchedulePasses) {
  const BipartiteGraph g = demand_2x2();
  validate_schedule(g, good_schedule(), 2);
  EXPECT_TRUE(schedule_is_valid(g, good_schedule(), 2));
}

TEST(Schedule, DetectsKViolation) {
  const BipartiteGraph g = demand_2x2();
  std::string why;
  EXPECT_FALSE(schedule_is_valid(g, good_schedule(), 1, &why));
  EXPECT_NE(why.find("> k=1"), std::string::npos);
}

TEST(Schedule, DetectsOnePortSenderViolation) {
  BipartiteGraph g(1, 2);
  g.add_edge(0, 0, 1);
  g.add_edge(0, 1, 1);
  Schedule s;
  s.add_step(Step{{{0, 0, 1}, {0, 1, 1}}});  // same sender twice
  std::string why;
  EXPECT_FALSE(schedule_is_valid(g, s, 2, &why));
  EXPECT_NE(why.find("sender 0"), std::string::npos);
}

TEST(Schedule, DetectsOnePortReceiverViolation) {
  BipartiteGraph g(2, 1);
  g.add_edge(0, 0, 1);
  g.add_edge(1, 0, 1);
  Schedule s;
  s.add_step(Step{{{0, 0, 1}, {1, 0, 1}}});
  std::string why;
  EXPECT_FALSE(schedule_is_valid(g, s, 2, &why));
  EXPECT_NE(why.find("receiver 0"), std::string::npos);
}

TEST(Schedule, DetectsUnderDelivery) {
  const BipartiteGraph g = demand_2x2();
  Schedule s;
  s.add_step(Step{{{0, 0, 3}, {1, 1, 4}}});  // one unit short on (1,1)
  std::string why;
  EXPECT_FALSE(schedule_is_valid(g, s, 2, &why));
  EXPECT_NE(why.find("delivered 4 of required 5"), std::string::npos);
}

TEST(Schedule, DetectsOverDelivery) {
  const BipartiteGraph g = demand_2x2();
  Schedule s;
  s.add_step(Step{{{0, 0, 3}, {1, 1, 6}}});
  EXPECT_FALSE(schedule_is_valid(g, s, 2));
}

TEST(Schedule, DetectsPhantomPair) {
  const BipartiteGraph g = demand_2x2();
  Schedule s = good_schedule();
  s.add_step(Step{{{0, 1, 1}}});  // no demand on (0,1)
  std::string why;
  EXPECT_FALSE(schedule_is_valid(g, s, 2, &why));
  EXPECT_NE(why.find("no demand"), std::string::npos);
}

TEST(Schedule, DetectsNonPositiveAmount) {
  const BipartiteGraph g = demand_2x2();
  Schedule s;
  s.add_step(Step{{{0, 0, 0}}});
  EXPECT_FALSE(schedule_is_valid(g, s, 2));
}

TEST(Schedule, DetectsOutOfRangeNodes) {
  const BipartiteGraph g = demand_2x2();
  Schedule s;
  s.add_step(Step{{{5, 0, 1}}});
  EXPECT_FALSE(schedule_is_valid(g, s, 2));
}

TEST(Schedule, ParallelEdgesSumPerPair) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 2);
  g.add_edge(0, 0, 3);  // parallel edge; pair total is 5
  Schedule s;
  s.add_step(Step{{{0, 0, 5}}});
  EXPECT_TRUE(schedule_is_valid(g, s, 1));
}

TEST(Schedule, ValidateThrowsWithMessage) {
  const BipartiteGraph g = demand_2x2();
  Schedule s;  // empty: delivers nothing
  EXPECT_THROW(validate_schedule(g, s, 2), Error);
}

TEST(Schedule, ToStringMentionsSteps) {
  const std::string dump = good_schedule().to_string();
  EXPECT_NE(dump.find("2 step(s)"), std::string::npos);
  EXPECT_NE(dump.find("0->0:3"), std::string::npos);
}

}  // namespace
}  // namespace redist
