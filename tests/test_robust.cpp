// Unit tests for the robustness primitives (src/robust): the capped
// exponential backoff policy, the Retrier budget/sleeper seam, and the
// deterministic fault injector's rule windows, plan merging and scoped
// installation. Backoff timing is asserted through an injected recording
// sleeper — the delay sequence is a pure function of (policy, rng state),
// so no wall-clock measurement is involved.
#include "robust/retry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "robust/fault_injector.hpp"

namespace redist::robust {
namespace {

RetryPolicy jitterless(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.base_delay_ms = 2;
  policy.max_delay_ms = 10;
  policy.multiplier = 2.0;
  policy.jitter = 0;
  return policy;
}

TEST(Robust, BackoffGrowsGeometricallyAndCaps) {
  const RetryPolicy policy = jitterless(8);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 1, rng), 2.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 2, rng), 4.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 3, rng), 8.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 4, rng), 10.0);  // capped
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 9, rng), 10.0);  // stays capped
}

TEST(Robust, BackoffJitterBoundedAndSeedDeterministic) {
  RetryPolicy policy = jitterless(8);
  policy.jitter = 0.25;
  Rng a(policy.seed);
  Rng b(policy.seed);
  for (int retry = 1; retry <= 16; ++retry) {
    const double from_a = backoff_delay_ms(policy, retry, a);
    const double from_b = backoff_delay_ms(policy, retry, b);
    EXPECT_DOUBLE_EQ(from_a, from_b) << "retry " << retry;
    policy.jitter = 0;
    Rng unused(0);
    const double nominal = backoff_delay_ms(policy, retry, unused);
    policy.jitter = 0.25;
    EXPECT_GE(from_a, nominal * 0.75) << "retry " << retry;
    EXPECT_LE(from_a, nominal * 1.25) << "retry " << retry;
  }
}

TEST(Robust, RetrierRecoversAndSleepsTheExactBackoffSequence) {
  const RetryPolicy policy = jitterless(5);
  std::vector<double> slept;
  Retrier retrier(policy, [&slept](double ms) { slept.push_back(ms); });
  int calls = 0;
  const int value = retrier.run([&calls]() {
    if (++calls < 3) throw Error("transient");
    return 42;
  });
  EXPECT_EQ(value, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retrier.retries(), 2);
  // With jitter 0 the recorded sleeps are exactly the policy's sequence.
  Rng rng(policy.seed);
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_DOUBLE_EQ(slept[0], backoff_delay_ms(policy, 1, rng));
  EXPECT_DOUBLE_EQ(slept[1], backoff_delay_ms(policy, 2, rng));
}

TEST(Robust, RetrierExhaustsBudgetAndRethrows) {
  const RetryPolicy policy = jitterless(3);
  std::vector<double> slept;
  Retrier retrier(policy, [&slept](double ms) { slept.push_back(ms); });
  int calls = 0;
  EXPECT_THROW(retrier.run([&calls]() -> int {
    ++calls;
    throw Error("permanent");
  }),
               Error);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retrier.retries(), 2);
  EXPECT_EQ(slept.size(), 2u);
}

TEST(Robust, RetrierDoesNotCatchForeignExceptions) {
  const RetryPolicy policy = jitterless(5);
  Retrier retrier(policy, [](double) {});
  int calls = 0;
  EXPECT_THROW(retrier.run([&calls]() -> int {
    ++calls;
    throw std::logic_error("bug, not a transient");
  }),
               std::logic_error);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retrier.retries(), 0);
}

TEST(Robust, RetrierRejectsEmptyBudget) {
  RetryPolicy policy = jitterless(0);
  EXPECT_THROW(Retrier{policy}, Error);
}

TEST(Robust, RetrierReportsRetriesToMetrics) {
  obs::MetricsRegistry registry;
  const obs::ScopedTelemetry scope(&registry, nullptr);
  Retrier retrier(jitterless(5), [](double) {});
  int calls = 0;
  retrier.run([&calls]() {
    if (++calls < 4) throw Error("transient");
    return 0;
  });
  EXPECT_EQ(registry.counter("robust.retry.count").value(), 3u);
}

TEST(Robust, TimeoutErrorIsCatchableAsError) {
  EXPECT_THROW(throw TimeoutError("deadline"), Error);
  EXPECT_THROW(throw TimeoutError("deadline"), TimeoutError);
}

TEST(FaultInjector, RuleWindowFiresBeginToCount) {
  FaultInjector injector(7);
  FaultRule rule;
  rule.kind = FaultKind::kStall;
  rule.site = FaultSite::kSend;
  rule.begin = 2;
  rule.count = 2;
  rule.stall_ms = 5;
  injector.add_rule(rule);
  std::vector<bool> fired;
  for (int op = 0; op < 6; ++op) {
    fired.push_back(injector.plan_op(FaultSite::kSend).any());
  }
  const std::vector<bool> expected{false, false, true, true, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(injector.op_count(FaultSite::kSend), 6u);
  EXPECT_EQ(injector.injected_count(), 2u);
}

TEST(FaultInjector, SitesCountIndependently) {
  FaultInjector injector;
  FaultRule rule;
  rule.kind = FaultKind::kReset;
  rule.site = FaultSite::kRecv;
  rule.begin = 1;
  injector.add_rule(rule);
  // Send ops do not advance the recv window.
  EXPECT_FALSE(injector.plan_op(FaultSite::kSend).any());
  EXPECT_FALSE(injector.plan_op(FaultSite::kSend).any());
  EXPECT_FALSE(injector.plan_op(FaultSite::kRecv).any());  // recv op 0
  EXPECT_TRUE(injector.plan_op(FaultSite::kRecv).reset);   // recv op 1
  EXPECT_EQ(injector.op_count(FaultSite::kSend), 2u);
  EXPECT_EQ(injector.op_count(FaultSite::kRecv), 2u);
}

TEST(FaultInjector, PlansMergeAcrossRules) {
  FaultInjector injector;
  FaultRule reset;
  reset.kind = FaultKind::kReset;
  reset.site = FaultSite::kSend;
  reset.at_bytes = 100;
  injector.add_rule(reset);
  FaultRule narrow;
  narrow.kind = FaultKind::kShortWrite;
  narrow.site = FaultSite::kSend;
  narrow.chunk_cap = 8;
  injector.add_rule(narrow);
  FaultRule narrower;
  narrower.kind = FaultKind::kShortWrite;
  narrower.site = FaultSite::kSend;
  narrower.chunk_cap = 3;
  injector.add_rule(narrower);
  const FaultPlan plan = injector.plan_op(FaultSite::kSend);
  EXPECT_TRUE(plan.reset);
  EXPECT_EQ(plan.reset_after, 100);
  EXPECT_EQ(plan.chunk_cap, 3);  // tightest cap wins
  EXPECT_TRUE(plan.any());
}

TEST(FaultInjector, RejectsMalformedRules) {
  FaultInjector injector;
  FaultRule bad_probability;
  bad_probability.probability = 1.5;
  EXPECT_THROW(injector.add_rule(bad_probability), Error);
  FaultRule refusal_off_site;
  refusal_off_site.kind = FaultKind::kConnectRefuse;
  refusal_off_site.site = FaultSite::kSend;
  EXPECT_THROW(injector.add_rule(refusal_off_site), Error);
  FaultRule capless;
  capless.kind = FaultKind::kShortWrite;
  capless.chunk_cap = 0;
  EXPECT_THROW(injector.add_rule(capless), Error);
}

TEST(FaultInjector, ProbabilisticRulesAreSeedDeterministic) {
  const auto pattern = [](std::uint64_t seed) {
    FaultInjector injector(seed);
    FaultRule rule;
    rule.kind = FaultKind::kStall;
    rule.site = FaultSite::kSend;
    rule.count = 1000;
    rule.probability = 0.5;
    rule.stall_ms = 1;
    injector.add_rule(rule);
    std::vector<bool> fired;
    for (int op = 0; op < 64; ++op) {
      fired.push_back(injector.plan_op(FaultSite::kSend).any());
    }
    return fired;
  };
  EXPECT_EQ(pattern(11), pattern(11));
  EXPECT_NE(pattern(11), pattern(12));  // astronomically unlikely to match
}

TEST(FaultInjector, ScopedInstallationNestsAndRestores) {
  EXPECT_EQ(injector(), nullptr);
  FaultInjector outer;
  FaultInjector inner;
  {
    const ScopedFaultInjection outer_scope(&outer);
    EXPECT_EQ(injector(), &outer);
    {
      const ScopedFaultInjection inner_scope(&inner);
      EXPECT_EQ(injector(), &inner);
    }
    EXPECT_EQ(injector(), &outer);
  }
  EXPECT_EQ(injector(), nullptr);
}

TEST(FaultInjector, NamesAreStable) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kConnectRefuse), "connect-refuse");
  EXPECT_STREQ(fault_kind_name(FaultKind::kReset), "reset");
  EXPECT_STREQ(fault_kind_name(FaultKind::kStall), "stall");
  EXPECT_STREQ(fault_kind_name(FaultKind::kShortWrite), "short-write");
}

}  // namespace
}  // namespace redist::robust
