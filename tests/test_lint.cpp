// Pins the redist_lint rule pass: every rule has a must-fire and a
// near-miss fixture under tests/lint/, plus unit tests for scoping,
// suppressions, and the two acceptance scenarios (rand() in the solver,
// GUARDED_BY removed from an annotated class).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/lint_core.hpp"

namespace redist::lint {
namespace {

#ifndef REDIST_LINT_FIXTURE_DIR
#error "REDIST_LINT_FIXTURE_DIR must point at tests/lint"
#endif

std::string rule_file_stem(const std::string& rule) {
  std::string stem = rule;
  for (char& c : stem) {
    if (c == '-') c = '_';
  }
  return stem;
}

Options fixture_options(const std::string& rule) {
  Options options;
  options.scope_by_path = false;
  options.rules = {rule};
  return options;
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const Options& options) {
  const std::string path = std::string(REDIST_LINT_FIXTURE_DIR) + "/" + name;
  return lint_file(path, name, options);
}

class LintFixtures : public ::testing::TestWithParam<std::string> {};

TEST_P(LintFixtures, MustFireFixtureFires) {
  const std::string rule = GetParam();
  const auto findings =
      lint_fixture("fail_" + rule_file_stem(rule) + ".cpp",
                   fixture_options(rule));
  ASSERT_FALSE(findings.empty()) << "fixture for " << rule << " is silent";
  for (const Finding& f : findings) EXPECT_EQ(f.rule, rule);
}

TEST_P(LintFixtures, NearMissFixtureStaysClean) {
  const std::string rule = GetParam();
  const auto findings =
      lint_fixture("pass_" + rule_file_stem(rule) + ".cpp",
                   fixture_options(rule));
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRules, LintFixtures,
                         ::testing::ValuesIn(rule_ids()),
                         [](const auto& info) {
                           return rule_file_stem(info.param);
                         });

TEST(LintRules, RegistryIsComplete) {
  EXPECT_EQ(rule_ids().size(), 5u);
  for (const std::string& id : rule_ids()) {
    EXPECT_FALSE(rule_description(id).empty()) << id;
  }
}

TEST(LintSuppression, DirectivesNeutralizeFindings) {
  const auto findings =
      lint_fixture("suppressed.cpp", fixture_options("wallclock"));
  EXPECT_TRUE(findings.empty());
}

TEST(LintSuppression, DirectiveOnlyCoversAdjacentLine) {
  const char* src =
      "// redist-lint: allow(wallclock) covers next line only\n"
      "long a() { return time(nullptr); }\n"
      "long b() { return time(nullptr); }\n";
  Options options = fixture_options("wallclock");
  const auto findings = lint_source("f.cpp", src, options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintSuppression, TrailingDirectiveDoesNotBlanketTheNextLine) {
  // Regression: a trailing allow on one member must not swallow a finding
  // on the member declared directly below it.
  const char* src =
      "class C {\n"
      "  Mutex mu_;\n"
      "  Engine eng_;  // redist-lint: allow(mutex-guard) ctor-only\n"
      "  int active_ = 0;\n"
      "};\n";
  const auto findings = lint_source("src/runtime/x.hpp", src, Options{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintSuppression, WrongRuleIdDoesNotSuppress) {
  const char* src =
      "// redist-lint: allow(float-eq) wrong rule\n"
      "long a() { return time(nullptr); }\n";
  const auto findings =
      lint_source("f.cpp", src, fixture_options("wallclock"));
  EXPECT_EQ(findings.size(), 1u);
}

// Acceptance scenario 1: seeding rand() into the solver must fail the run.
TEST(LintScoping, RandInSolverFires) {
  const char* src = "int jitter() { return rand(); }\n";
  const auto findings = lint_source("src/kpbs/solver.cpp", src, Options{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-nondeterminism");
}

TEST(LintScoping, TestsAreOutsideNondeterminismScope) {
  const char* src = "int jitter() { return rand(); }\n";
  const auto findings =
      lint_source("tests/test_foo.cpp", src, Options{});
  EXPECT_TRUE(findings.empty());
}

TEST(LintScoping, RngImplementationIsExempt) {
  const char* src = "struct S { int x = mt19937_size; };\nint mt19937;\n";
  const auto findings = lint_source("src/common/rng.hpp", src, Options{});
  EXPECT_TRUE(findings.empty());
}

TEST(LintScoping, StopwatchOwnsTheWallClock) {
  const char* src = "long f() { return time(nullptr); }\n";
  EXPECT_TRUE(
      lint_source("src/common/stopwatch.hpp", src, Options{}).empty());
  EXPECT_EQ(lint_source("src/common/stopwatch.cpp", src, Options{}).size(),
            1u);
}

// Acceptance scenario 2: deleting a GUARDED_BY from an annotated class
// must fail the run.
TEST(LintMutexGuard, RemovingGuardedByFires) {
  const char* annotated =
      "class C {\n"
      "  Mutex mu_;\n"
      "  long total_ REDIST_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  const char* stripped =
      "class C {\n"
      "  Mutex mu_;\n"
      "  long total_ = 0;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/runtime/x.hpp", annotated, Options{}).empty());
  const auto findings = lint_source("src/runtime/x.hpp", stripped, Options{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "mutex-guard");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintMutexGuard, ConstAtomicAndReferencesAreExemptByDefault) {
  const char* src =
      "class C {\n"
      "  Mutex mu_;\n"
      "  const int capacity_ = 4;\n"
      "  std::atomic<bool> done_{false};\n"
      "  Engine& engine_;\n"
      "  static int instances;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/runtime/x.hpp", src, Options{}).empty());
}

TEST(LintFloatEq, NullptrComparisonIsNotAFloatCompare) {
  const char* src =
      "bool f(double* solve_ms) { return solve_ms != nullptr; }\n";
  EXPECT_TRUE(lint_source("src/kpbs/x.cpp", src, Options{}).empty());
}

TEST(LintTokenizer, StringsCommentsAndPreprocessorAreInvisible) {
  const char* src =
      "#include <random>  // mt19937 lives here\n"
      "const char* kName = \"mt19937\";\n"
      "/* rand() in a block comment */\n"
      "int f() { return 0; }\n";
  EXPECT_TRUE(lint_source("src/kpbs/x.cpp", src, Options{}).empty());
}

// Regression: a line comment with a trailing backslash splices the next
// source line into the comment; trigger tokens there are comment text.
TEST(LintTokenizer, CommentLineContinuationStaysComment) {
  const char* src =
      "// continues onto the next line \\\n"
      "   rand() mt19937 system_clock\n"
      "int f() { return 0; }\n";
  Options options;
  options.scope_by_path = false;
  EXPECT_TRUE(lint_source("x.cpp", src, options).empty());
}

// Regression: a block comment opened on a preprocessor line swallows its
// continuation lines instead of leaking them into the token stream.
TEST(LintTokenizer, BlockCommentOpenedOnPreprocessorLine) {
  const char* src =
      "#define BANNER /* spans lines\n"
      "  rand() mt19937 gettimeofday\n"
      "*/ 1\n"
      "int g() { return BANNER; }\n";
  Options options;
  options.scope_by_path = false;
  EXPECT_TRUE(lint_source("x.cpp", src, options).empty());
}

// ...while a quoted "/*" on a preprocessor line must NOT open a comment:
// the code after it is still analyzed (the rand() below has to fire).
TEST(LintTokenizer, QuotedCommentOpenerOnPreprocessorLineIsInert) {
  const char* src =
      "#define P \"/*\"\n"
      "int h() { return rand(); }\n";
  Options options;
  options.scope_by_path = false;
  const auto findings = lint_source("x.cpp", src, options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-nondeterminism");
  EXPECT_EQ(findings[0].line, 2);
}

// The full trap corpus (strings + comments stuffed with trigger tokens)
// must stay clean under every rule.
TEST(LintTokenizer, TrapFixtureStaysCleanUnderAllRules) {
  Options options;
  options.scope_by_path = false;
  const auto findings =
      lint_fixture("pass_tokenizer_traps.cpp", options);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
}

TEST(LintCli, MissingFileThrows) {
  EXPECT_THROW(lint_file("/nonexistent/nope.cpp", "nope.cpp", Options{}),
               std::runtime_error);
}

}  // namespace
}  // namespace redist::lint
