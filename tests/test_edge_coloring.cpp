#include "matching/edge_coloring.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

void check_coloring(const BipartiteGraph& g,
                    const std::vector<Matching>& colors) {
  // Exactly Delta classes; each a valid matching; each alive edge once.
  ASSERT_EQ(colors.size(), static_cast<std::size_t>(g.max_degree()));
  std::set<EdgeId> seen;
  for (const Matching& m : colors) {
    ASSERT_TRUE(is_matching(g, m));
    for (EdgeId e : m.edges) {
      ASSERT_TRUE(seen.insert(e).second) << "edge " << e << " colored twice";
    }
  }
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(g.alive_edge_count()));
}

TEST(EdgeColoring, EmptyGraph) {
  BipartiteGraph g(3, 3);
  EXPECT_TRUE(bipartite_edge_coloring(g).empty());
}

TEST(EdgeColoring, SingleEdgeOneColor) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 5);
  const auto colors = bipartite_edge_coloring(g);
  ASSERT_EQ(colors.size(), 1u);
  EXPECT_EQ(colors[0].edges.size(), 1u);
}

TEST(EdgeColoring, StarNeedsDegreeColors) {
  BipartiteGraph g(1, 5);
  for (NodeId j = 0; j < 5; ++j) g.add_edge(0, j, 1);
  const auto colors = bipartite_edge_coloring(g);
  check_coloring(g, colors);
  EXPECT_EQ(colors.size(), 5u);
}

TEST(EdgeColoring, CompleteBipartiteUsesExactlyN) {
  BipartiteGraph g(4, 4);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = 0; j < 4; ++j) g.add_edge(i, j, 1 + i + j);
  }
  const auto colors = bipartite_edge_coloring(g);
  check_coloring(g, colors);
  EXPECT_EQ(colors.size(), 4u);
  // Every color class of K44 is a perfect matching.
  for (const Matching& m : colors) EXPECT_EQ(m.size(), 4u);
}

TEST(EdgeColoring, UnevenSides) {
  BipartiteGraph g(2, 7);
  for (NodeId j = 0; j < 7; ++j) g.add_edge(j % 2, j, 1);
  const auto colors = bipartite_edge_coloring(g);
  check_coloring(g, colors);
}

class EdgeColoringRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdgeColoringRandom, KoenigTheoremHolds) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    RandomGraphConfig config;
    config.max_left = 12;
    config.max_right = 12;
    config.max_edges = 50;
    const BipartiteGraph g = random_bipartite(rng, config);
    check_coloring(g, bipartite_edge_coloring(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeColoringRandom,
                         ::testing::Values(7, 14, 21, 28));

TEST(EdgeColoring, SkipsDeadEdges) {
  BipartiteGraph g(2, 2);
  const EdgeId dead = g.add_edge(0, 0, 1);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, 1);
  g.decrease_weight(dead, 1);
  const auto colors = bipartite_edge_coloring(g);
  check_coloring(g, colors);
  EXPECT_EQ(colors.size(), 1u);  // Delta dropped to 1
}

}  // namespace
}  // namespace redist
