#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace redist {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyQueriesAreWellDefined) {
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStats, MergeEmptyIntoEmptyStaysEmpty) {
  RunningStats a;
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_TRUE(std::isnan(a.mean()));
}

// Negative-only samples guard against a merge that treats the zero-valued
// fields of an empty accumulator as real min/max candidates.
TEST(RunningStats, MergeFromEmptyDoesNotInventZeroExtrema) {
  RunningStats a;
  RunningStats b;
  b.add(-5.0);
  b.add(-1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.min(), -5.0);
  EXPECT_DOUBLE_EQ(a.max(), -1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.min(), -5.0);
  EXPECT_DOUBLE_EQ(a.max(), -1.0);
  EXPECT_EQ(a.count(), 2u);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_real(-10, 10);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty += nonempty
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  a.merge(c);  // nonempty += empty
  EXPECT_EQ(a.count(), 2u);
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, PercentileValidatesInput) {
  SampleSet s;
  EXPECT_TRUE(std::isnan(s.percentile(50)));  // empty: NaN, not a throw
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), Error);
  EXPECT_THROW(s.percentile(101), Error);
}

}  // namespace
}  // namespace redist
