#include "mpilite/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "common/rng.hpp"
#include "kpbs/solver.hpp"
#include "mpilite/redistribute.hpp"
#include "workload/uniform_traffic.hpp"

namespace redist {
namespace {

TEST(Mpilite, SingleRankMesh) {
  Mesh mesh(1);
  std::atomic<int> ran{0};
  run_ranks(mesh, [&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();  // degenerate barrier must not hang
    ++ran;
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(Mpilite, PointToPointRoundRobin) {
  const int n = 4;
  Mesh mesh(n);
  std::atomic<int> checks{0};
  run_ranks(mesh, [&](Communicator& comm) {
    // Everyone sends its rank to the next rank; receives from previous.
    const int me = comm.rank();
    const int to = (me + 1) % n;
    const int from = (me + n - 1) % n;
    comm.send(to, 5, &me, sizeof(me));
    const std::vector<char> got = comm.recv(from, 5);
    int value = -1;
    std::memcpy(&value, got.data(), sizeof(value));
    if (value == from) ++checks;
  });
  EXPECT_EQ(checks.load(), n);
}

TEST(Mpilite, MessagesBetweenPairKeepOrder) {
  Mesh mesh(2);
  run_ranks(mesh, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send(1, 9, &i, sizeof(i));
    } else {
      for (int i = 0; i < 50; ++i) {
        const std::vector<char> got = comm.recv(0, 9);
        int value = -1;
        std::memcpy(&value, got.data(), sizeof(value));
        ASSERT_EQ(value, i);
      }
    }
  });
}

TEST(Mpilite, BarrierSynchronizesPhases) {
  const int n = 5;
  Mesh mesh(n);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  run_ranks(mesh, [&](Communicator& comm) {
    ++phase1;
    comm.barrier();
    // After the barrier every rank must observe all phase-1 increments.
    if (phase1.load() != n) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(Mpilite, SubgroupBarrierDoesNotTouchOthers) {
  const int n = 4;
  Mesh mesh(n);
  const std::vector<int> group{0, 2};
  run_ranks(mesh, [&](Communicator& comm) {
    if (comm.rank() == 0 || comm.rank() == 2) {
      comm.barrier(group);
      comm.barrier(group);
    }
    // Ranks 1 and 3 do nothing; the run must still terminate.
  });
  SUCCEED();
}

TEST(Mpilite, BarrierRejectsNonMembers) {
  Mesh mesh(2);
  run_ranks(mesh, [&](Communicator& comm) {
    if (comm.rank() == 1) {
      EXPECT_THROW(comm.barrier({0}), Error);
    }
  });
}

TEST(Mpilite, RankExceptionsPropagate) {
  Mesh mesh(2);
  EXPECT_THROW(run_ranks(mesh,
                         [](Communicator& comm) {
                           if (comm.rank() == 1) throw Error("boom");
                         }),
               Error);
}

TEST(Mpilite, SendValidatesPeer) {
  Mesh mesh(2);
  run_ranks(mesh, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      int x = 0;
      EXPECT_THROW(comm.send(0, 1, &x, sizeof(x)), Error);  // self
      EXPECT_THROW(comm.send(5, 1, &x, sizeof(x)), Error);  // out of range
    }
  });
}

// --- Full redistribution over real sockets -------------------------------

SocketClusterConfig test_cluster() {
  SocketClusterConfig config;
  config.card_out_bps = 3e6;
  config.card_in_bps = 3e6;
  config.backbone_bps = 6e6;
  config.chunk_bytes = 4096;
  config.burst_bytes = 8192;
  return config;
}

TEST(SocketRedistribute, BruteforceDeliversAndVerifies) {
  Rng rng(71);
  const TrafficMatrix traffic =
      uniform_all_pairs_traffic(rng, 3, 3, 5000, 20000);
  const SocketRunResult r = socket_bruteforce(test_cluster(), traffic);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.bytes_delivered, traffic.total());
  EXPECT_EQ(r.steps, 1u);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(SocketRedistribute, ScheduledDeliversAndVerifies) {
  Rng rng(72);
  const TrafficMatrix traffic =
      uniform_all_pairs_traffic(rng, 3, 3, 5000, 20000);
  const double bpu = 8000.0;
  const BipartiteGraph g = traffic.to_graph(bpu);
  const Schedule s = solve_kpbs(g, {2, 1, Algorithm::kOGGP}).schedule;
  const SocketRunResult r = socket_scheduled(test_cluster(), traffic, s, bpu);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.bytes_delivered, traffic.total());
  EXPECT_GE(r.steps, s.step_count());
}

TEST(SocketRedistribute, SparseTrafficWithIdleNodes) {
  TrafficMatrix traffic(4, 4);
  traffic.set(0, 3, 9000);
  traffic.set(2, 1, 4000);  // nodes 1, 3 send nothing; 0, 2 receive nothing
  const double bpu = 4000.0;
  const BipartiteGraph g = traffic.to_graph(bpu);
  const Schedule s = solve_kpbs(g, {2, 1, Algorithm::kGGP}).schedule;
  const SocketRunResult r = socket_scheduled(test_cluster(), traffic, s, bpu);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.bytes_delivered, 13000);
}

TEST(SocketRedistribute, ShapingSlowsTheTransfer) {
  TrafficMatrix traffic(1, 1);
  traffic.set(0, 0, 120000);
  SocketClusterConfig slow = test_cluster();
  slow.card_out_bps = 400e3;  // 120 KB at 400 KB/s: >= ~0.25 s
  slow.backbone_bps = 400e3;
  const SocketRunResult r = socket_bruteforce(slow, traffic);
  EXPECT_TRUE(r.verified);
  EXPECT_GE(r.seconds, 0.2);
}

}  // namespace
}  // namespace redist
