#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/telemetry.hpp"

namespace redist::obs {
namespace {

TEST(ObsMetrics, CounterGaugeBasics) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&registry.counter("c"), &c);  // stable handle

  Gauge& g = registry.gauge("g");
  g.set(5);
  g.add(-3);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 5);
  g.set(9);
  EXPECT_EQ(g.max(), 9);
  g.set(1);
  EXPECT_EQ(g.max(), 9);  // watermark is sticky
}

TEST(ObsMetrics, HistogramBucketsAndSummary) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h", {1.0, 10.0, 100.0});
  for (double x : {0.5, 1.0, 5.0, 50.0, 500.0}) h.record(x);
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);  // <= 1:   0.5, 1.0
  EXPECT_EQ(snap.counts[1], 1u);  // <= 10:  5.0
  EXPECT_EQ(snap.counts[2], 1u);  // <= 100: 50.0
  EXPECT_EQ(snap.counts[3], 1u);  // overflow: 500.0
  EXPECT_EQ(snap.summary.count(), 5u);
  EXPECT_DOUBLE_EQ(snap.summary.min(), 0.5);
  EXPECT_DOUBLE_EQ(snap.summary.max(), 500.0);
}

TEST(ObsMetrics, HistogramBoundsAreSortedAndDeduplicated) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h", {10.0, 1.0, 10.0});
  h.record(5.0);
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(snap.bounds[1], 10.0);
  EXPECT_EQ(snap.counts[1], 1u);
}

// The registry's concurrency contract: counters are exact under any
// interleaving, histograms lose no samples, creation races resolve to one
// instrument per name. Run under TSan in CI.
TEST(ObsMetrics, ConcurrentRecordingIsExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIterations; ++i) {
        registry.counter("shared.counter").add();
        registry.counter("worker." + std::to_string(t)).add();
        registry.gauge("shared.gauge").set(t);
        registry.histogram("shared.hist", {0.5}).record(static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.counter("shared.counter").value(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("worker." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIterations));
  }
  const HistogramSnapshot h = registry.histogram("shared.hist").snapshot();
  EXPECT_EQ(h.summary.count(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.gauge("shared.gauge").max(), kThreads - 1);
}

TEST(ObsMetrics, SnapshotSortsNames) {
  MetricsRegistry registry;
  registry.counter("zeta").add();
  registry.counter("alpha").add(2);
  registry.gauge("mid").set(7);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second.value, 7);
}

TEST(ObsMetrics, JsonExportSchemaAndNullsForEmptyHistogram) {
  MetricsRegistry registry;
  registry.counter("events").add(3);
  registry.histogram("empty", {1.0});  // created, never recorded
  std::ostringstream os;
  write_metrics_json(os, registry);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"redist.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"mean\": null"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
}

TEST(ObsMetrics, CsvExportHasOneRowPerInstrument) {
  MetricsRegistry registry;
  registry.counter("c").add(4);
  registry.gauge("g").set(-2);
  registry.histogram("h", {1.0}).record(0.5);
  std::ostringstream os;
  write_metrics_csv(os, registry);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("name,kind,count,value,mean,min,max,p50,p95,p99\n"),
            std::string::npos);
  EXPECT_NE(csv.find("c,counter,,4,,,,,,"), std::string::npos);
  EXPECT_NE(csv.find("g,gauge,,-2,,,,,,"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram,1,"), std::string::npos);
}

TEST(ObsMetrics, HistogramQuantilesInterpolateWithinBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("q", {10.0, 20.0, 30.0});
  // 10 samples in (10, 20]: ranks 1..10 all land in the second bucket.
  for (int i = 0; i < 10; ++i) h.record(15.0);
  const HistogramSnapshot snap = h.snapshot();
  // p50 rank = 5 of 10 -> halfway through [10, 20].
  EXPECT_NEAR(snap.p50(), 15.0, 1e-9);
  // Quantiles never leave the observed range.
  EXPECT_GE(snap.quantile(0.0), snap.summary.min());
  EXPECT_LE(snap.quantile(1.0), snap.summary.max());
}

TEST(ObsMetrics, HistogramQuantilesSpreadAcrossBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("q2", {10.0, 20.0, 30.0});
  // 50 samples <= 10, 50 in (20, 30]: the median sits at the top of the
  // first bucket, p99 deep in the third.
  for (int i = 0; i < 50; ++i) h.record(5.0);
  for (int i = 0; i < 50; ++i) h.record(25.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_LE(snap.p50(), 10.0);
  EXPECT_GT(snap.p99(), 20.0);
  EXPECT_LE(snap.p99(), snap.summary.max());
}

TEST(ObsMetrics, EmptyHistogramQuantileIsNaN) {
  MetricsRegistry registry;
  const HistogramSnapshot snap = registry.histogram("never", {1.0}).snapshot();
  EXPECT_TRUE(std::isnan(snap.p50()));
  EXPECT_TRUE(std::isnan(snap.quantile(0.99)));
}

TEST(ObsMetrics, JsonExportCarriesQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {1.0, 10.0});
  for (int i = 0; i < 4; ++i) h.record(0.5);
  std::ostringstream os;
  write_metrics_json(os, registry);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(ObsMetrics, PrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("kpbs.solve.count").add(3);
  registry.gauge("runtime.pool.queue_depth").set(2);
  Histogram& h = registry.histogram("kpbs.solve_ms", {1.0, 10.0});
  h.record(0.5);
  h.record(5.0);
  h.record(50.0);
  std::ostringstream os;
  write_metrics_prometheus(os, registry);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE redist_kpbs_solve_count counter"),
            std::string::npos);
  EXPECT_NE(text.find("redist_kpbs_solve_count 3"), std::string::npos);
  EXPECT_NE(text.find("redist_runtime_pool_queue_depth 2"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE redist_kpbs_solve_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("redist_kpbs_solve_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("redist_kpbs_solve_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("redist_kpbs_solve_ms_count 3"), std::string::npos);
  EXPECT_NE(text.find("redist_kpbs_solve_ms_p50"), std::string::npos);
}

TEST(ObsMetrics, ScopedTelemetryInstallsAndRestores) {
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(trace(), nullptr);
  {
    MetricsRegistry registry;
    ScopedTelemetry scoped(&registry, nullptr);
    EXPECT_EQ(metrics(), &registry);
    EXPECT_EQ(trace(), nullptr);
    {
      MetricsRegistry inner;
      ScopedTelemetry nested(&inner, nullptr);
      EXPECT_EQ(metrics(), &inner);
    }
    EXPECT_EQ(metrics(), &registry);
  }
  EXPECT_EQ(metrics(), nullptr);
}

}  // namespace
}  // namespace redist::obs
