// Property tests for the GGP/OGGP solvers over random instances: schedule
// feasibility, the 2-approximation guarantee against the lower bound, and
// structural invariants of the peeling pipeline.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "kpbs/lower_bound.hpp"
#include "kpbs/regularize.hpp"
#include "kpbs/solver.hpp"
#include "workload/random_graphs.hpp"
#include "workload/scenario.hpp"

namespace redist {
namespace {

struct PropertyCase {
  std::uint64_t seed;
  Weight beta;
  Weight max_weight;
};

class SolverProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SolverProperties, SchedulesAreFeasibleAndWithinTwiceTheLowerBound) {
  const PropertyCase param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 25; ++trial) {
    RandomGraphConfig config;
    config.max_left = 12;
    config.max_right = 12;
    config.max_edges = 40;
    config.max_weight = param.max_weight;
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 14));
    const LowerBound lb = kpbs_lower_bound(g, k, param.beta);

    for (const Algorithm algo : {Algorithm::kGGP, Algorithm::kOGGP, Algorithm::kGGPMaxWeight}) {
      const Schedule s = solve_kpbs(g, {k, param.beta, algo}).schedule;
      ASSERT_NO_THROW(validate_schedule(g, s, clamp_k(g, k)))
          << algorithm_name(algo) << " seed=" << param.seed
          << " trial=" << trial << " k=" << k;
      // 2-approximation guarantee (LB <= OPT, so cost <= 2*LB suffices).
      const Rational cost(s.cost(param.beta));
      ASSERT_LE(cost, Rational(2) * lb.value())
          << algorithm_name(algo) << " cost " << s.cost(param.beta)
          << " vs 2*LB " << (Rational(2) * lb.value()).to_double()
          << " seed=" << param.seed << " trial=" << trial << " k=" << k;
      // Cost is at least the lower bound (sanity of the bound itself).
      ASSERT_GE(cost, lb.value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverProperties,
    ::testing::Values(PropertyCase{101, 1, 20}, PropertyCase{102, 1, 10000},
                      PropertyCase{103, 0, 20}, PropertyCase{104, 5, 20},
                      PropertyCase{105, 40, 20}, PropertyCase{106, 1, 1},
                      PropertyCase{107, 7, 10000}, PropertyCase{108, 2, 3}));

class SolverKSweep : public ::testing::TestWithParam<int> {};

TEST_P(SolverKSweep, WidthNeverExceedsK) {
  const int k = GetParam();
  Rng rng(2000 + static_cast<std::uint64_t>(k));
  for (int trial = 0; trial < 10; ++trial) {
    RandomGraphConfig config;
    config.max_left = 10;
    config.max_right = 10;
    config.max_edges = 30;
    const BipartiteGraph g = random_bipartite(rng, config);
    for (const Algorithm algo : {Algorithm::kGGP, Algorithm::kOGGP, Algorithm::kGGPMaxWeight}) {
      const Schedule s = solve_kpbs(g, {k, 1, algo}).schedule;
      ASSERT_LE(s.max_step_width(),
                static_cast<std::size_t>(clamp_k(g, k)));
      ASSERT_EQ(s.total_amount(), g.total_weight());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(K, SolverKSweep, ::testing::Values(1, 2, 3, 5, 8, 40));

TEST(SolverProperties, OggpStepsTendSmaller) {
  // Aggregate over many random instances: OGGP should need at most as many
  // steps as GGP on average (the paper reports ~50% fewer in its setup).
  Rng rng(31337);
  double ggp_steps = 0;
  double oggp_steps = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    RandomGraphConfig config;
    config.max_left = 10;
    config.max_right = 10;
    config.max_edges = 40;
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 10));
    ggp_steps += static_cast<double>(
        solve_kpbs(g, {k, 1, Algorithm::kGGP}).schedule.step_count());
    oggp_steps += static_cast<double>(
        solve_kpbs(g, {k, 1, Algorithm::kOGGP}).schedule.step_count());
  }
  EXPECT_LE(oggp_steps, ggp_steps * 1.02);
}

TEST(SolverProperties, StepCountWithinPeelingBound) {
  // Section 4.1: every WRGP peel kills at least one edge of the regularized
  // graph J, so the emitted schedule can never contain more steps than J
  // has alive edges (extraction only ever *drops* all-synthetic steps).
  // And since every step costs at least beta, steps * beta <= cost <= 2*LB.
  Rng rng(60601);
  for (int trial = 0; trial < 40; ++trial) {
    RandomGraphConfig config;
    config.max_left = 10;
    config.max_right = 10;
    config.max_edges = 40;
    config.max_weight = (trial % 2 == 0) ? 20 : 2000;
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 12));
    const Weight beta = rng.uniform_int(0, 4);

    // Replicate the solver's normalization + regularization to measure the
    // peeling bound it faces.
    const Weight unit = std::max<Weight>(1, beta);
    BipartiteGraph normalized(g.left_count(), g.right_count());
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (!g.alive(e)) continue;
      const Edge& edge = g.edge(e);
      normalized.add_edge(edge.left, edge.right,
                          ceil_div(edge.weight, unit));
    }
    const Regularized reg = regularize(normalized, k);
    const std::size_t bound = reg.graph.alive_edge_count();

    for (const Algorithm algo : {Algorithm::kGGP, Algorithm::kOGGP}) {
      for (const MatchingEngine engine :
           {MatchingEngine::kCold, MatchingEngine::kWarm}) {
        const Schedule s = solve_kpbs(g, {k, beta, algo, engine}).schedule;
        ASSERT_LE(s.step_count(), bound)
            << algorithm_name(algo) << "/" << engine_name(engine)
            << " trial=" << trial << " k=" << k << " beta=" << beta;
        if (beta > 0) {
          const LowerBound lb = kpbs_lower_bound(g, k, beta);
          ASSERT_LE(Rational(static_cast<Weight>(s.step_count()) * beta),
                    Rational(2) * lb.value())
              << algorithm_name(algo) << " trial=" << trial;
        }
      }
    }
  }
}

// The paper's bounds hold per instance, not per distribution — so every
// adversarial family in the scenario matrix must satisfy them too, on both
// matching engines. Sizes are scaled down hard; the full-size instances run
// in tools/redist_sweep.
class ScenarioFamilyProperties
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioFamilyProperties, TwoApproximationHoldsAcrossTheFamily) {
  ScenarioSpec spec;
  for (const ScenarioSpec& builtin : builtin_scenarios(0.05)) {
    if (builtin.name == GetParam()) spec = builtin;
  }
  ASSERT_EQ(spec.name, GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    spec.seed = 0xFA2 + static_cast<std::uint64_t>(trial) * 6151;
    const ScenarioWorkload w = materialize_scenario(spec);
    if (w.demand.alive_edge_count() == 0) continue;
    const LowerBound lb = kpbs_lower_bound(w.demand, spec.k, spec.beta);
    for (const Algorithm algo : {Algorithm::kGGP, Algorithm::kOGGP}) {
      for (const MatchingEngine engine :
           {MatchingEngine::kCold, MatchingEngine::kWarm}) {
        const Schedule s =
            solve_kpbs(w.demand, {spec.k, spec.beta, algo, engine}).schedule;
        ASSERT_NO_THROW(
            validate_schedule(w.demand, s, clamp_k(w.demand, spec.k)))
            << spec.name << "/" << algorithm_name(algo) << "/"
            << engine_name(engine) << " trial=" << trial;
        const Rational cost(s.cost(spec.beta));
        ASSERT_LE(cost, Rational(2) * lb.value())
            << spec.name << "/" << algorithm_name(algo)
            << " cost=" << s.cost(spec.beta) << " trial=" << trial;
        ASSERT_GE(cost, lb.value()) << spec.name << " trial=" << trial;
        ASSERT_LE(s.max_step_width(),
                  static_cast<std::size_t>(clamp_k(w.demand, spec.k)))
            << spec.name << " trial=" << trial;
        ASSERT_EQ(s.total_amount(), w.demand.total_weight())
            << spec.name << " trial=" << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScenarioFamilyProperties,
                         ::testing::Values("uniform", "heterogeneous",
                                           "asymmetric", "hotspot",
                                           "sparse_giant", "fault_storm"));

TEST(SolverProperties, DeterministicForFixedInput) {
  Rng rng(444);
  RandomGraphConfig config;
  const BipartiteGraph g = random_bipartite(rng, config);
  const Schedule a = solve_kpbs(g, {5, 1, Algorithm::kOGGP}).schedule;
  const Schedule b = solve_kpbs(g, {5, 1, Algorithm::kOGGP}).schedule;
  ASSERT_EQ(a.step_count(), b.step_count());
  ASSERT_EQ(a.cost(1), b.cost(1));
  for (std::size_t i = 0; i < a.step_count(); ++i) {
    ASSERT_EQ(a.steps()[i].size(), b.steps()[i].size());
    ASSERT_EQ(a.steps()[i].duration(), b.steps()[i].duration());
  }
}

}  // namespace
}  // namespace redist
