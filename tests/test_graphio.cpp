#include "graph/graphio.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

TEST(GraphIo, RoundTripPreservesEverything) {
  BipartiteGraph g(3, 2);
  g.add_edge(0, 1, 5);
  g.add_edge(2, 0, 7);
  const BipartiteGraph h = graph_from_string(graph_to_string(g));
  EXPECT_EQ(h.left_count(), 3);
  EXPECT_EQ(h.right_count(), 2);
  EXPECT_EQ(h.alive_edge_count(), 2);
  EXPECT_EQ(h.total_weight(), 12);
  EXPECT_EQ(h.edge(0).left, 0);
  EXPECT_EQ(h.edge(0).right, 1);
  EXPECT_EQ(h.edge(0).weight, 5);
}

TEST(GraphIo, DeadEdgesAreDropped) {
  BipartiteGraph g(1, 1);
  const EdgeId e = g.add_edge(0, 0, 3);
  g.add_edge(0, 0, 4);
  g.decrease_weight(e, 3);
  const BipartiteGraph h = graph_from_string(graph_to_string(g));
  EXPECT_EQ(h.alive_edge_count(), 1);
  EXPECT_EQ(h.total_weight(), 4);
}

TEST(GraphIo, MalformedHeaderThrows) {
  std::istringstream is("not a graph");
  EXPECT_THROW(read_graph(is), Error);
}

TEST(GraphIo, TruncatedEdgeListThrows) {
  std::istringstream is("2 2 3\n0 0 1\n");
  EXPECT_THROW(read_graph(is), Error);
}

TEST(GraphIo, InvalidEdgeEndpointThrows) {
  std::istringstream is("2 2 1\n5 0 1\n");
  EXPECT_THROW(read_graph(is), Error);
}

TEST(GraphIo, DotContainsNodesAndLabels) {
  BipartiteGraph g(1, 2);
  g.add_edge(0, 1, 9);
  const std::string dot = graph_to_dot(g, "Demo");
  EXPECT_NE(dot.find("graph Demo"), std::string::npos);
  EXPECT_NE(dot.find("l0 -- r1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"9\""), std::string::npos);
}

TEST(GraphIoProperty, RandomGraphsRoundTrip) {
  Rng rng(1234);
  for (int trial = 0; trial < 25; ++trial) {
    RandomGraphConfig config;
    config.max_left = 15;
    config.max_right = 15;
    config.max_edges = 60;
    const BipartiteGraph g = random_bipartite(rng, config);
    const BipartiteGraph h = graph_from_string(graph_to_string(g));
    ASSERT_EQ(h.left_count(), g.left_count());
    ASSERT_EQ(h.right_count(), g.right_count());
    ASSERT_EQ(h.alive_edge_count(), g.alive_edge_count());
    ASSERT_EQ(h.total_weight(), g.total_weight());
    ASSERT_EQ(h.max_degree(), g.max_degree());
    ASSERT_EQ(h.max_node_weight(), g.max_node_weight());
  }
}

}  // namespace
}  // namespace redist
