// SchedulerService + SolveCache semantics: exact cache hits are
// bit-identical replays of the original solve, near-miss warm seeding
// never changes a schedule byte (proven against unseeded cold solves over
// the golden corpus), LFU eviction keeps the hot entries, admission
// control answers typed rate-limit errors, and a concurrent submit storm
// over real sockets is data-race-free (the TSan job runs this file).
#include "service/scheduler_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "graph/graphio.hpp"
#include "graph/traffic_matrix.hpp"
#include "kpbs/regularize.hpp"
#include "kpbs/schedule_io.hpp"
#include "kpbs/solver.hpp"
#include "net/client_session.hpp"
#include "obs/introspect.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "robust/retry.hpp"
#include "service/fingerprint.hpp"
#include "service/solve_cache.hpp"
#include "validate/schedule_validator.hpp"

#ifndef REDIST_TEST_DATA_DIR
#error "REDIST_TEST_DATA_DIR must point at tests/data"
#endif

namespace redist::service {
namespace {

BipartiteGraph load_golden(const std::string& file) {
  const std::string path = std::string(REDIST_TEST_DATA_DIR) + "/" + file;
  std::ifstream in(path);
  if (!in) throw Error("cannot open golden instance: " + path);
  return read_graph(in);
}

/// Request carrying the graph's demands verbatim (weight == bytes).
rpc::SolveRequest request_from_graph(const BipartiteGraph& g, int k,
                                     Weight beta) {
  rpc::SolveRequest req;
  req.k = k;
  req.beta = beta;
  req.senders = g.left_count();
  req.receivers = g.right_count();
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!g.alive(e)) continue;
    const Edge& edge = g.edge(e);
    req.entries.push_back(
        {edge.left, edge.right, static_cast<Bytes>(edge.weight)});
  }
  return req;
}

/// The daemon's exact solver input for `req`, for ground-truth solves.
BipartiteGraph graph_of_request(const rpc::SolveRequest& req) {
  TrafficMatrix m(req.senders, req.receivers);
  for (const rpc::TrafficEntry& e : req.entries) {
    m.add(e.sender, e.receiver, e.bytes);
  }
  return m.to_graph_bytes();
}

TEST(SolveCacheTest, ExactHitIsBitIdenticalToTheOriginalSolve) {
  SchedulerService daemon;
  rpc::SolveRequest req = request_from_graph(load_golden("golden_02.graph"),
                                             /*k=*/4, /*beta=*/1);
  req.request_id = 1;
  const rpc::SolveResponse cold = daemon.serve_solve(req);
  EXPECT_EQ(cold.served_from, rpc::ServedFrom::kCold);

  // Ground truth: the daemon's answer must equal a direct library solve of
  // the same instance, byte for byte.
  const SolveResult direct =
      solve_kpbs(graph_of_request(req),
                 {req.k, req.beta, req.algorithm, req.engine});
  EXPECT_EQ(cold.schedule_text, schedule_to_string(direct.schedule));
  EXPECT_EQ(cold.lb_min_steps, direct.lower_bound.min_steps);
  EXPECT_EQ(cold.lb_num, direct.lower_bound.min_transmission.num());
  EXPECT_EQ(cold.lb_den, direct.lower_bound.min_transmission.den());

  // Replay: same instance, new request identity — served from cache with
  // every solver-derived byte identical.
  req.request_id = 2;
  const rpc::SolveResponse hit = daemon.serve_solve(req);
  EXPECT_EQ(hit.served_from, rpc::ServedFrom::kCacheHit);
  EXPECT_EQ(hit.request_id, 2u);
  EXPECT_EQ(hit.schedule_text, cold.schedule_text);
  EXPECT_EQ(hit.lb_min_steps, cold.lb_min_steps);
  EXPECT_EQ(hit.lb_num, cold.lb_num);
  EXPECT_EQ(hit.lb_den, cold.lb_den);
  EXPECT_EQ(hit.evaluation_ratio, cold.evaluation_ratio);
  EXPECT_EQ(hit.solve_id, cold.solve_id);
  EXPECT_EQ(daemon.cache().entry_count(), 1u);
  daemon.stop();
}

TEST(SolveCacheTest, EntryOrderDoesNotChangeTheFingerprint) {
  // The wire order of traffic entries is client-chosen; the canonical form
  // (row-major matrix scan) must erase it.
  rpc::SolveRequest forward = request_from_graph(
      load_golden("golden_03.graph"), /*k=*/4, /*beta=*/1);
  rpc::SolveRequest reversed = forward;
  std::reverse(reversed.entries.begin(), reversed.entries.end());

  SchedulerService daemon;
  forward.request_id = 1;
  reversed.request_id = 2;
  const rpc::SolveResponse first = daemon.serve_solve(forward);
  const rpc::SolveResponse second = daemon.serve_solve(reversed);
  EXPECT_EQ(first.served_from, rpc::ServedFrom::kCold);
  EXPECT_EQ(second.served_from, rpc::ServedFrom::kCacheHit);
  EXPECT_EQ(second.schedule_text, first.schedule_text);
  daemon.stop();
}

TEST(SolveCacheTest, FingerprintSeparatesShapeFromWeights) {
  TrafficMatrix m(3, 3);
  m.add(0, 1, 100);
  m.add(2, 0, 50);
  const SolverOptions options{4, 1, Algorithm::kOGGP, MatchingEngine::kWarm};

  TrafficMatrix drifted(3, 3);
  drifted.add(0, 1, 120);  // same positions, different volumes
  drifted.add(2, 0, 50);

  const CanonicalInstance a = canonicalize(m, options);
  const CanonicalInstance b = canonicalize(drifted, options);
  const InstanceFingerprint fa = fingerprint_instance(a);
  const InstanceFingerprint fb = fingerprint_instance(b);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_EQ(a.weight_distance(b), 20);
  EXPECT_EQ(fa.shape, fb.shape);
  EXPECT_NE(fa.full, fb.full);

  // Any solver-option change is a different shape (and full) fingerprint:
  // cached results are only reusable under identical options.
  SolverOptions other_k = options;
  other_k.k = 5;
  const InstanceFingerprint fk = fingerprint_instance(canonicalize(m, other_k));
  EXPECT_NE(fk.shape, fa.shape);
  EXPECT_NE(fk.full, fa.full);

  // A different position with identical total volume is a different shape.
  TrafficMatrix moved(3, 3);
  moved.add(0, 2, 100);
  moved.add(2, 0, 50);
  const InstanceFingerprint fm =
      fingerprint_instance(canonicalize(moved, options));
  EXPECT_NE(fm.shape, fa.shape);
}

TEST(SolveCacheTest, WarmNearMissMatchesColdSolveOnGoldenCorpus) {
  // The load-bearing warm-path property: a near-miss solve (warm-seeded
  // from the nearest cached shape sibling) must emit the same schedule an
  // unseeded solve of the same instance would — same bytes, same makespan —
  // and the schedule must validate. Proven across the golden corpus.
  const char* corpus[] = {"golden_02.graph", "golden_03.graph",
                          "golden_07.graph", "golden_09.graph",
                          "golden_11.graph", "golden_13.graph"};
  obs::MetricsRegistry registry;
  obs::Journal journal(4096);
  obs::ScopedTelemetry telemetry(&registry, nullptr);
  obs::ScopedJournal scoped_journal(&journal);

  SchedulerService daemon;
  std::uint64_t request_id = 0;
  for (const char* file : corpus) {
    const BipartiteGraph g = load_golden(file);
    rpc::SolveRequest base = request_from_graph(g, /*k=*/4, /*beta=*/1);
    base.request_id = ++request_id;
    ASSERT_EQ(daemon.serve_solve(base).served_from, rpc::ServedFrom::kCold)
        << file;

    // Drift every volume by +1: same shape, different full fingerprint.
    rpc::SolveRequest drifted = base;
    drifted.request_id = ++request_id;
    for (rpc::TrafficEntry& e : drifted.entries) e.bytes += 1;

    const rpc::SolveResponse warm = daemon.serve_solve(drifted);
    EXPECT_EQ(warm.served_from, rpc::ServedFrom::kWarmNearMiss) << file;

    const BipartiteGraph drifted_graph = graph_of_request(drifted);
    const SolveResult cold = solve_kpbs(
        drifted_graph,
        {drifted.k, drifted.beta, drifted.algorithm, drifted.engine});
    EXPECT_EQ(warm.schedule_text, schedule_to_string(cold.schedule)) << file;

    const Schedule schedule = schedule_from_string(warm.schedule_text);
    EXPECT_EQ(schedule.cost(drifted.beta), cold.schedule.cost(drifted.beta))
        << file;
    ScheduleValidatorOptions options;
    options.k = clamp_k(drifted_graph, drifted.k);
    options.beta = drifted.beta;
    EXPECT_TRUE(
        ScheduleValidator(options).validate(drifted_graph, schedule).ok())
        << file;
  }
  daemon.stop();

  // The warm path is observable: near-miss counters, installed-seed
  // counters and kCacheWarmSeed journal events all fired once per file.
  std::uint64_t near_misses = 0;
  std::uint64_t seeds_installed = 0;
  for (const auto& [name, count] : registry.snapshot().counters) {
    if (name == "service.cache.near_misses") near_misses = count;
    if (name == "kpbs.warm_seed.installed") seeds_installed = count;
  }
  EXPECT_EQ(near_misses, std::size(corpus));
  EXPECT_EQ(seeds_installed, std::size(corpus));
  std::size_t warm_seed_events = 0;
  for (const obs::JournalEvent& event : journal.snapshot()) {
    if (event.kind == obs::JournalEventKind::kCacheWarmSeed) {
      ++warm_seed_events;
    }
  }
  EXPECT_EQ(warm_seed_events, std::size(corpus));
}

TEST(SolveCacheTest, LfuEvictionDropsTheColdestEntry) {
  const SolverOptions options{2, 1, Algorithm::kOGGP, MatchingEngine::kWarm};
  // Three single-entry instances with distinct *positions* (distinct
  // shapes), so lookups of an evicted one report a clean miss.
  TrafficMatrix m1(4, 4), m2(4, 4), m3(4, 4);
  m1.add(0, 0, 10);
  m2.add(1, 1, 10);
  m3.add(2, 2, 10);
  const CanonicalInstance i1 = canonicalize(m1, options);
  const CanonicalInstance i2 = canonicalize(m2, options);
  const CanonicalInstance i3 = canonicalize(m3, options);
  const InstanceFingerprint f1 = fingerprint_instance(i1);
  const InstanceFingerprint f2 = fingerprint_instance(i2);
  const InstanceFingerprint f3 = fingerprint_instance(i3);

  SolveCache cache(2);
  cache.insert_solve(f1, i1, {"s1", 1, 0, 1, 1.0, 101, nullptr});
  cache.insert_solve(f2, i2, {"s2", 1, 0, 1, 1.0, 102, nullptr});
  EXPECT_EQ(cache.entry_count(), 2u);

  // Heat up i1; i2 stays at zero hits.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cache.lookup(f1, i1).kind, SolveCache::Lookup::Kind::kHit);
  }

  // At capacity the LFU victim is i2, not the recently inserted i3.
  cache.insert_solve(f3, i3, {"s3", 1, 0, 1, 1.0, 103, nullptr});
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.lookup(f1, i1).kind, SolveCache::Lookup::Kind::kHit);
  EXPECT_EQ(cache.lookup(f3, i3).kind, SolveCache::Lookup::Kind::kHit);
  EXPECT_EQ(cache.lookup(f2, i2).kind, SolveCache::Lookup::Kind::kMiss);
}

TEST(SolveCacheTest, NearMissPrefersTheNearestShapeSibling) {
  const SolverOptions options{2, 1, Algorithm::kOGGP, MatchingEngine::kWarm};
  TrafficMatrix base(3, 3);
  base.add(0, 0, 100);
  base.add(1, 2, 100);

  TrafficMatrix near(3, 3);
  near.add(0, 0, 110);  // L1 distance 10 + 0
  near.add(1, 2, 100);
  TrafficMatrix far(3, 3);
  far.add(0, 0, 500);  // L1 distance 400 + 300
  far.add(1, 2, 400);

  const CanonicalInstance bi = canonicalize(base, options);
  const CanonicalInstance ni = canonicalize(near, options);
  const CanonicalInstance fi = canonicalize(far, options);

  const auto near_handle = std::make_shared<const Matching>();
  const auto far_handle = std::make_shared<const Matching>();
  SolveCache cache(8);
  cache.insert_solve(fingerprint_instance(ni), ni,
               {"near", 1, 0, 1, 1.0, 1, near_handle});
  cache.insert_solve(fingerprint_instance(fi), fi,
               {"far", 1, 0, 1, 1.0, 2, far_handle});

  const SolveCache::Lookup lookup = cache.lookup(fingerprint_instance(bi), bi);
  ASSERT_EQ(lookup.kind, SolveCache::Lookup::Kind::kNearMiss);
  EXPECT_EQ(lookup.warm_seed, near_handle);
  EXPECT_EQ(lookup.weight_distance, 10);
}

TEST(SchedulerServiceTest, RateLimitAnswersTypedErrorAndConnectionSurvives) {
  SchedulerServiceOptions options;
  options.admission_rate_rps = 1e-6;  // effectively: the burst is all there is
  options.admission_burst = 1;
  SchedulerService daemon(options);
  ClientSession session = ClientSession::dial_rpc(daemon.port());

  rpc::SolveRequest req =
      request_from_graph(load_golden("golden_05.graph"), /*k=*/2, /*beta=*/1);
  req.request_id = 1;
  EXPECT_EQ(session.solve(req).request_id, 1u);  // consumes the burst token

  req.request_id = 2;
  try {
    (void)session.solve(req);
    FAIL() << "second request should have been rate-limited";
  } catch (const RpcRemoteError& e) {
    EXPECT_EQ(e.response().code, rpc::RpcErrorCode::kRateLimited);
    EXPECT_EQ(e.response().request_id, 2u);
  }
  daemon.stop();
}

TEST(SchedulerServiceTest, ConcurrentSubmitStormServesEveryRequest) {
  // Many clients hammering two instances through real sockets: every
  // request must be answered correctly, and after the first two solves
  // everything is a cache hit. This is the TSan workout for the daemon's
  // accept/pool/cache/admission interplay.
  SchedulerServiceOptions options;
  options.threads = 4;
  SchedulerService daemon(options);

  const rpc::SolveRequest req_a =
      request_from_graph(load_golden("golden_05.graph"), /*k=*/2, /*beta=*/1);
  const rpc::SolveRequest req_b =
      request_from_graph(load_golden("golden_09.graph"), /*k=*/5, /*beta=*/1);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 8;
  std::atomic<int> ok{0};
  std::atomic<int> cache_hits{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ClientSession session = ClientSession::dial_rpc(daemon.port());
      for (int i = 0; i < kRequestsPerClient; ++i) {
        rpc::SolveRequest req = (i % 2 == 0) ? req_a : req_b;
        req.request_id =
            static_cast<std::uint64_t>(c) * 1000 +
            static_cast<std::uint64_t>(i) + 1;
        const rpc::SolveResponse response = session.solve(req);
        if (response.request_id == req.request_id &&
            !response.schedule_text.empty()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
        if (response.served_from == rpc::ServedFrom::kCacheHit) {
          cache_hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  daemon.stop();

  EXPECT_EQ(ok.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(daemon.requests_served(),
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  // Two distinct instances → at most two cold solves per fingerprint can
  // race in; everything else must hit.
  EXPECT_GE(cache_hits.load(), kClients * kRequestsPerClient - 2 * kClients);
  EXPECT_LE(daemon.cache().entry_count(), 2u);
}

TEST(SchedulerServiceTest, StatuszExposesTheCacheSection) {
  obs::MetricsRegistry registry;
  obs::ScopedTelemetry telemetry(&registry, nullptr);

  SchedulerService daemon;
  rpc::SolveRequest req =
      request_from_graph(load_golden("golden_05.graph"), /*k=*/2, /*beta=*/1);
  req.request_id = 1;
  (void)daemon.serve_solve(req);
  req.request_id = 2;
  (void)daemon.serve_solve(req);
  daemon.stop();

  const obs::IntrospectionServer server(&registry, nullptr);
  const auto response = server.respond("statusz");
  EXPECT_NE(response.body.find("\"cache\":{"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"hits\":1"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"misses\":1"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"entries\":1"), std::string::npos)
      << response.body;

  // Without any service activity the section reports null, not zeros.
  const obs::IntrospectionServer bare(nullptr, nullptr);
  EXPECT_NE(bare.respond("statusz").body.find("\"cache\":null"),
            std::string::npos);
}

TEST(SchedulerServiceTest, ServeSolveSurfacesDomainFailuresAsError) {
  // serve_solve surfaces solver/domain failures as redist::Error (the
  // socket handler maps them to kInternal). The rpc decoder pre-rejects
  // degenerate cluster sizes, but in-process callers reach the
  // TrafficMatrix contract directly.
  SchedulerService daemon;
  rpc::SolveRequest req;
  req.request_id = 1;
  req.k = 1;
  req.beta = 1;
  req.senders = 0;  // TrafficMatrix requires positive dimensions
  req.receivers = 2;
  EXPECT_THROW((void)daemon.serve_solve(req), Error);

  // An empty-but-valid instance is not an error: it solves to the empty
  // schedule and caches like any other result.
  rpc::SolveRequest empty;
  empty.request_id = 2;
  empty.k = 1;
  empty.beta = 1;
  empty.senders = 2;
  empty.receivers = 2;
  const rpc::SolveResponse response = daemon.serve_solve(empty);
  EXPECT_EQ(response.served_from, rpc::ServedFrom::kCold);
  empty.request_id = 3;
  EXPECT_EQ(daemon.serve_solve(empty).served_from,
            rpc::ServedFrom::kCacheHit);
  daemon.stop();
}

}  // namespace
}  // namespace redist::service
