// The introspection endpoint round-trips over real loopback sockets, the
// deadline-aware connection handling never lets an idle client wedge the
// serving thread, and running the full observability stack (metrics +
// journal + server) changes no schedule byte.
#include "obs/introspect.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kpbs/solver.hpp"
#include "net/socket.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "workload/random_graphs.hpp"

namespace redist::obs {
namespace {

// One request/response exchange: connect, send the request bytes, read the
// raw response until the server closes the connection.
std::string fetch(std::uint16_t port, const std::string& request) {
  TcpStream stream = TcpStream::connect_loopback(port);
  stream.set_io_timeout_ms(5000);
  stream.send_all(request.data(), request.size());
  std::string response;
  try {
    char c = 0;
    for (;;) {
      stream.recv_all(&c, 1);
      response.push_back(c);
    }
  } catch (const Error&) {
    // Peer close ends the response; the server always closes after one
    // exchange (Connection: close).
  }
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

TEST(Introspect, HealthzRoundTripsBareLineProtocol) {
  MetricsRegistry registry;
  Journal journal(256);
  IntrospectionServer server(&registry, &journal);
  ASSERT_GT(server.port(), 0);

  const std::string response = fetch(server.port(), "healthz\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  const std::string body = body_of(response);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"uptime_ms\":"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(Introspect, StatuszRoundTripsHttpRequestLine) {
  MetricsRegistry registry;
  registry.gauge("runtime.pool.queue_depth").set(3);
  Journal journal(256);
  {
    const SolveIdScope scope(11);
    journal.record(JournalEventKind::kSolveBegin, 2, 2);
    journal.record(JournalEventKind::kSolveEnd, 1, 4, 1.0);
    journal.record(JournalEventKind::kSolveBegin, 2, 2);  // still in flight
  }
  IntrospectionServer server(&registry, &journal);

  const std::string body =
      body_of(fetch(server.port(), "GET /statusz HTTP/1.1\r\n"));
  EXPECT_NE(body.find("\"solves_begun\":2"), std::string::npos);
  EXPECT_NE(body.find("\"solves_finished\":1"), std::string::npos);
  EXPECT_NE(body.find("\"solves_in_flight\":1"), std::string::npos);
  EXPECT_NE(body.find("\"pool_queue_depth\":3"), std::string::npos);
  EXPECT_NE(body.find("\"recorded\":3"), std::string::npos);
}

TEST(Introspect, MetricszServesPrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("kpbs.solve.count").add(5);
  IntrospectionServer server(&registry, nullptr);

  const std::string response = fetch(server.port(), "metricsz\n");
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  const std::string body = body_of(response);
  EXPECT_NE(body.find("# TYPE redist_kpbs_solve_count counter"),
            std::string::npos);
  EXPECT_NE(body.find("redist_kpbs_solve_count 5"), std::string::npos);
}

TEST(Introspect, JournalzHonorsLastParameter) {
  Journal journal(256);
  for (int i = 0; i < 10; ++i) {
    journal.record(JournalEventKind::kPeelStep, i);
  }
  IntrospectionServer server(nullptr, &journal);

  const std::string body =
      body_of(fetch(server.port(), "GET /journalz?last=3 HTTP/1.0\r\n"));
  EXPECT_NE(body.find("\"schema\":\"redist.journal.v1\""), std::string::npos);
  EXPECT_NE(body.find("\"events\":3"), std::string::npos);
  EXPECT_NE(body.find("\"seq\":9"), std::string::npos);
  EXPECT_EQ(body.find("\"seq\":6"), std::string::npos);

  const std::string all = body_of(fetch(server.port(), "journalz\n"));
  EXPECT_NE(all.find("\"events\":10"), std::string::npos);
}

TEST(Introspect, RespondCoversErrorAndUninstalledSurfaces) {
  IntrospectionServer server(nullptr, nullptr);

  const IntrospectionServer::Response missing = server.respond("nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("healthz"), std::string::npos);

  const IntrospectionServer::Response health = server.respond("healthz");
  EXPECT_EQ(health.status, 200);

  const IntrospectionServer::Response metrics = server.respond("metricsz");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("no metrics registry"), std::string::npos);

  const IntrospectionServer::Response journalz = server.respond("journalz");
  EXPECT_NE(journalz.body.find("no journal installed"), std::string::npos);

  // Garbage ?last= values degrade to "all events", never throw.
  const IntrospectionServer::Response garbage =
      server.respond("journalz?last=banana");
  EXPECT_NE(garbage.body.find("no journal installed"), std::string::npos);

  const IntrospectionServer::Response statusz = server.respond("statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("\"journal\":null"), std::string::npos);
}

// Deadline-aware I/O (PR 5): a client that connects and never sends a
// request is dropped by the per-connection idle deadline instead of
// wedging the single serving thread — the next real request still gets an
// answer.
TEST(Introspect, IdleClientCannotWedgeTheServer) {
  IntrospectOptions options;
  options.io_timeout_ms = 200;
  IntrospectionServer server(nullptr, nullptr, options);

  TcpStream idle = TcpStream::connect_loopback(server.port());
  ASSERT_TRUE(idle.valid());
  // The server is now blocked reading this connection's request line; the
  // 200ms deadline frees it. fetch()'s own 5s client deadline bounds the
  // wait for the queued connection below.
  const std::string response = fetch(server.port(), "healthz\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(Introspect, StopIsIdempotentAndPortsAreDistinct) {
  IntrospectionServer a(nullptr, nullptr);
  IntrospectionServer b(nullptr, nullptr);
  EXPECT_NE(a.port(), b.port());
  a.stop();
  a.stop();  // second stop is a no-op
}

// The full observability stack is observation-only: serving introspection
// requests mid-solve changes no schedule byte versus a bare solve.
TEST(Introspect, FullStackDoesNotChangeSchedules) {
  const BipartiteGraph g = [] {
    Rng rng(21);
    RandomGraphConfig config;
    config.max_left = 12;
    config.max_right = 12;
    config.max_edges = 60;
    config.min_weight = 1;
    config.max_weight = 20;
    return random_bipartite(rng, config);
  }();
  const SolverOptions options{4, 1, Algorithm::kOGGP, MatchingEngine::kWarm};
  const Schedule plain = solve_kpbs(g, options).schedule;

  Schedule instrumented;
  {
    MetricsRegistry registry;
    Journal journal(4096);
    ScopedTelemetry telemetry(&registry, nullptr);
    ScopedJournal scoped_journal(&journal);
    IntrospectionServer server(&registry, &journal);
    instrumented = solve_kpbs(g, options).schedule;
    const std::string body = body_of(fetch(server.port(), "statusz\n"));
    EXPECT_NE(body.find("\"solves_finished\":1"), std::string::npos);
  }

  ASSERT_EQ(plain.step_count(), instrumented.step_count());
  for (std::size_t s = 0; s < plain.step_count(); ++s) {
    const Step& sp = plain.steps()[s];
    const Step& si = instrumented.steps()[s];
    ASSERT_EQ(sp.comms.size(), si.comms.size()) << "step " << s;
    for (std::size_t c = 0; c < sp.comms.size(); ++c) {
      EXPECT_EQ(sp.comms[c].sender, si.comms[c].sender);
      EXPECT_EQ(sp.comms[c].receiver, si.comms[c].receiver);
      EXPECT_EQ(sp.comms[c].amount, si.comms[c].amount);
    }
  }
}

}  // namespace
}  // namespace redist::obs
