// Telemetry must be observation-only: installing a metrics registry and a
// trace session cannot change a single byte of any schedule, for either
// matching engine or any algorithm. This pins the "differential" half of
// the observability contract (docs/OBSERVABILITY.md); the exporters are
// covered by test_obs_metrics / test_obs_trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "runtime/batch.hpp"
#include "kpbs/solver.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

BipartiteGraph instance(std::uint64_t seed) {
  Rng rng(seed);
  RandomGraphConfig config;
  config.max_left = 14;
  config.max_right = 14;
  config.max_edges = 80;
  config.min_weight = 1;
  config.max_weight = 30;
  return random_bipartite(rng, config);
}

void expect_identical(const Schedule& a, const Schedule& b,
                      const std::string& label) {
  ASSERT_EQ(a.step_count(), b.step_count()) << label;
  for (std::size_t s = 0; s < a.step_count(); ++s) {
    const Step& sa = a.steps()[s];
    const Step& sb = b.steps()[s];
    ASSERT_EQ(sa.comms.size(), sb.comms.size()) << label << " step " << s;
    for (std::size_t c = 0; c < sa.comms.size(); ++c) {
      EXPECT_EQ(sa.comms[c].sender, sb.comms[c].sender) << label;
      EXPECT_EQ(sa.comms[c].receiver, sb.comms[c].receiver) << label;
      EXPECT_EQ(sa.comms[c].amount, sb.comms[c].amount) << label;
    }
  }
}

TEST(TelemetryDifferential, MetricsAndTracingDoNotChangeSchedules) {
  for (const Algorithm algo :
       {Algorithm::kGGP, Algorithm::kOGGP, Algorithm::kGGPMaxWeight}) {
    for (const MatchingEngine engine :
         {MatchingEngine::kCold, MatchingEngine::kWarm}) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const BipartiteGraph g = instance(seed);
        const Schedule plain = solve_kpbs(g, {5, 2, algo, engine}).schedule;
        Schedule instrumented;
        {
          obs::MetricsRegistry registry;
          obs::TraceSession session;
          obs::ScopedTelemetry scoped(&registry, &session);
          instrumented = solve_kpbs(g, {5, 2, algo, engine}).schedule;
        }
        expect_identical(plain, instrumented,
                         algorithm_name(algo) + "/" + engine_name(engine) +
                             " seed " + std::to_string(seed));
      }
    }
  }
}

TEST(TelemetryDifferential, WarmOggpRecordsExpectedInstruments) {
  const BipartiteGraph g = instance(7);
  obs::MetricsRegistry registry;
  obs::TraceSession session;
  {
    obs::ScopedTelemetry scoped(&registry, &session);
    solve_kpbs(g, {5, 1, Algorithm::kOGGP, MatchingEngine::kWarm}).schedule;
  }
  EXPECT_EQ(registry.counter("kpbs.solve.count").value(), 1u);
  EXPECT_EQ(registry.counter("kpbs.solve.engine_warm").value(), 1u);
  EXPECT_EQ(registry.counter("regularize.calls").value(), 1u);
  EXPECT_GT(registry.counter("wrgp.steps").value(), 0u);
  EXPECT_GT(registry.counter("bottleneck.probes").value(), 0u);
  EXPECT_GT(registry.counter("hk.phases").value(), 0u);
  // One peel run: the ledger is built once (miss) and reused every
  // subsequent step (hits).
  EXPECT_EQ(registry.counter("warm.ledger.misses").value(), 1u);
  EXPECT_EQ(registry.counter("warm.ledger.hits").value(),
            registry.counter("wrgp.steps").value() - 1);
  EXPECT_GT(session.event_count(), 0u);

  // The trace contains the span vocabulary the docs promise.
  std::vector<std::string> names;
  for (const obs::TraceEvent& e : session.snapshot()) names.push_back(e.name);
  for (const char* required :
       {"solve_kpbs", "regularize", "wrgp_peel", "wrgp.step",
        "bottleneck.search.warm", "bottleneck.probe", "bottleneck.replay",
        "hk.phase", "extract"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "missing span " << required;
  }
}

TEST(TelemetryDifferential, ColdOggpRecordsProbesWithoutWarmInstruments) {
  const BipartiteGraph g = instance(9);
  obs::MetricsRegistry registry;
  {
    obs::ScopedTelemetry scoped(&registry, nullptr);
    solve_kpbs(g, {5, 1, Algorithm::kOGGP, MatchingEngine::kCold}).schedule;
  }
  EXPECT_EQ(registry.counter("kpbs.solve.engine_cold").value(), 1u);
  EXPECT_GT(registry.counter("bottleneck.probes").value(), 0u);
  EXPECT_EQ(registry.counter("warm.ledger.hits").value(), 0u);
  EXPECT_EQ(registry.counter("warm.ledger.misses").value(), 0u);
  EXPECT_EQ(registry.counter("warm.seed.hits").value(), 0u);
  EXPECT_EQ(registry.counter("warm.seed.misses").value(), 0u);
}

TEST(TelemetryDifferential, BatchWithTelemetryMatchesSequentialPlain) {
  std::vector<KpbsRequest> requests;
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    KpbsRequest request;
    request.demand = instance(seed);
    request.options = SolverOptions{4, 1, Algorithm::kOGGP,
                                    MatchingEngine::kWarm};
    requests.push_back(std::move(request));
  }
  std::vector<Schedule> plain;
  plain.reserve(requests.size());
  for (const KpbsRequest& r : requests) {
    plain.push_back(solve_kpbs(r.demand, r.options).schedule);
  }

  obs::MetricsRegistry registry;
  obs::TraceSession session;
  std::vector<SolveResult> instrumented;
  {
    obs::ScopedTelemetry scoped(&registry, &session);
    BatchOptions options;
    options.threads = 3;
    instrumented = solve_kpbs_batch(requests, options);
  }
  ASSERT_EQ(instrumented.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expect_identical(plain[i], instrumented[i].schedule,
                     "batch instance " + std::to_string(i));
    EXPECT_GE(instrumented[i].solve_ms, 0.0);
  }
  EXPECT_EQ(registry.counter("kpbs.batch.instances").value(),
            requests.size());
  EXPECT_EQ(registry.counter("kpbs.solve.count").value(), requests.size());
  EXPECT_EQ(registry.counter("runtime.pool.tasks").value(), requests.size());
}

}  // namespace
}  // namespace redist
