#include "dynamic/online.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workload/uniform_traffic.hpp"

namespace redist {
namespace {

Platform platform_6() {
  Platform p;
  p.n1 = 6;
  p.n2 = 6;
  p.t1_bps = 1e5;
  p.t2_bps = 1e5;
  p.backbone_bps = 3e5;  // k = 3
  p.beta_seconds = 0.02;
  return p;
}

std::vector<ArrivalBatch> make_batches(Rng& rng, int count, double spacing,
                                       Bytes lo, Bytes hi) {
  std::vector<ArrivalBatch> batches;
  for (int b = 0; b < count; ++b) {
    batches.push_back(ArrivalBatch{
        b * spacing, uniform_all_pairs_traffic(rng, 6, 6, lo, hi)});
  }
  return batches;
}

TEST(Online, SingleBatchMatchesPlainExecution) {
  Rng rng(1);
  const Platform p = platform_6();
  const auto batches = make_batches(rng, 1, 0, 20'000, 60'000);
  const OnlineResult online =
      run_online(p, batches, 1e4, 1, Algorithm::kOGGP);
  const OnlineResult sequential =
      run_batch_sequential(p, batches, 1e4, 1, Algorithm::kOGGP);
  EXPECT_GT(online.total_seconds, 0);
  EXPECT_NEAR(online.total_seconds, sequential.total_seconds,
              sequential.total_seconds * 0.3);
  EXPECT_DOUBLE_EQ(online.idle_seconds, 0.0);
}

TEST(Online, RespectsArrivalTimes) {
  Rng rng(2);
  const Platform p = platform_6();
  // Second batch arrives long after the first drains: forced idle gap.
  auto batches = make_batches(rng, 2, 1000.0, 5'000, 10'000);
  const OnlineResult r = run_online(p, batches, 1e4, 1, Algorithm::kOGGP);
  EXPECT_GT(r.total_seconds, 1000.0);
  EXPECT_GT(r.idle_seconds, 900.0);
}

TEST(Online, MergingBeatsBatchSequentialOnBurstyArrivals) {
  // Batches arrive faster than they drain: the merging policy overlaps
  // them into denser steps; batch-sequential serializes.
  Rng rng(3);
  const Platform p = platform_6();
  const auto batches = make_batches(rng, 5, 1.0, 50'000, 150'000);
  const OnlineResult online =
      run_online(p, batches, 1e4, 1, Algorithm::kOGGP);
  const OnlineResult sequential =
      run_batch_sequential(p, batches, 1e4, 1, Algorithm::kOGGP);
  EXPECT_LE(online.total_seconds, sequential.total_seconds * 1.02);
}

TEST(Online, StepsPerPlanTradesReplansForSteps) {
  Rng rng(4);
  const Platform p = platform_6();
  const auto batches = make_batches(rng, 3, 2.0, 30'000, 90'000);
  const OnlineResult fine =
      run_online(p, batches, 1e4, 1, Algorithm::kOGGP, 1);
  const OnlineResult coarse =
      run_online(p, batches, 1e4, 1, Algorithm::kOGGP, 8);
  EXPECT_GT(fine.replans, coarse.replans);
  EXPECT_LT(coarse.total_seconds, fine.total_seconds * 1.5);
}

TEST(Online, ValidatesInput) {
  Rng rng(5);
  const Platform p = platform_6();
  EXPECT_THROW(run_online(p, {}, 1e4, 1, Algorithm::kOGGP), Error);
  auto batches = make_batches(rng, 2, 1.0, 1000, 2000);
  std::swap(batches[0], batches[1]);  // decreasing times
  EXPECT_THROW(run_online(p, batches, 1e4, 1, Algorithm::kOGGP), Error);
  auto ok = make_batches(rng, 1, 0, 1000, 2000);
  EXPECT_THROW(run_online(p, ok, 0.5, 1, Algorithm::kOGGP), Error);
  EXPECT_THROW(run_online(p, ok, 1e4, 1, Algorithm::kOGGP, 0), Error);
  ArrivalBatch wrong{0, TrafficMatrix(2, 2)};
  EXPECT_THROW(run_online(p, {wrong}, 1e4, 1, Algorithm::kOGGP), Error);
}

TEST(Online, EmptyBatchesAreSkipped) {
  const Platform p = platform_6();
  std::vector<ArrivalBatch> batches;
  batches.push_back(ArrivalBatch{0.0, TrafficMatrix(6, 6)});  // empty
  TrafficMatrix second(6, 6);
  second.set(0, 0, 50'000);
  batches.push_back(ArrivalBatch{1.0, second});
  const OnlineResult r = run_online(p, batches, 1e4, 1, Algorithm::kOGGP);
  EXPECT_GT(r.total_seconds, 1.0);
  const OnlineResult s =
      run_batch_sequential(p, batches, 1e4, 1, Algorithm::kOGGP);
  EXPECT_GT(s.total_seconds, 1.0);
}

}  // namespace
}  // namespace redist
