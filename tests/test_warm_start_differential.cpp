// Differential tests for the warm-start peeling engine: on hundreds of
// seeded random instances (varying sizes, k, beta, weight skew), the warm
// engine's GGP/OGGP schedules must be step-for-step identical to the cold
// reference path, and ScheduleValidator must accept both. A second layer
// checks the identity at the WRGP peel level (matching edge ids included),
// which is stricter than schedule equality.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kpbs/regularize.hpp"
#include "kpbs/solver.hpp"
#include "kpbs/wrgp.hpp"
#include "matching/peeling_context.hpp"
#include "validate/schedule_validator.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

void expect_identical_schedules(const Schedule& cold, const Schedule& warm,
                                const std::string& context) {
  ASSERT_EQ(cold.step_count(), warm.step_count()) << context;
  for (std::size_t s = 0; s < cold.step_count(); ++s) {
    const Step& a = cold.steps()[s];
    const Step& b = warm.steps()[s];
    ASSERT_EQ(a.comms.size(), b.comms.size()) << context << " step " << s;
    for (std::size_t c = 0; c < a.comms.size(); ++c) {
      ASSERT_EQ(a.comms[c].sender, b.comms[c].sender)
          << context << " step " << s << " comm " << c;
      ASSERT_EQ(a.comms[c].receiver, b.comms[c].receiver)
          << context << " step " << s << " comm " << c;
      ASSERT_EQ(a.comms[c].amount, b.comms[c].amount)
          << context << " step " << s << " comm " << c;
    }
  }
}

struct DifferentialCase {
  std::uint64_t seed;
  Weight beta;
  Weight max_weight;  // weight skew: 1..max_weight
  NodeId max_nodes;
  int max_edges;
  int trials;
};

class WarmStartDifferential
    : public ::testing::TestWithParam<DifferentialCase> {};

// Four parameter sets x 60 trials x {GGP, OGGP} = 240 instances compared,
// every one validated by ScheduleValidator on both engines.
TEST_P(WarmStartDifferential, WarmSchedulesMatchColdStepForStep) {
  const DifferentialCase param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < param.trials; ++trial) {
    RandomGraphConfig config;
    config.max_left = param.max_nodes;
    config.max_right = param.max_nodes;
    config.max_edges = param.max_edges;
    config.max_weight = param.max_weight;
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(
        rng.uniform_int(1, static_cast<std::int64_t>(param.max_nodes) + 4));
    for (const Algorithm algo : {Algorithm::kGGP, Algorithm::kOGGP}) {
      const std::string context = algorithm_name(algo) + " seed=" +
                                  std::to_string(param.seed) + " trial=" +
                                  std::to_string(trial) + " k=" +
                                  std::to_string(k);
      const Schedule cold =
          solve_kpbs(g, {k, param.beta, algo, MatchingEngine::kCold}).schedule;
      const Schedule warm =
          solve_kpbs(g, {k, param.beta, algo, MatchingEngine::kWarm}).schedule;
      expect_identical_schedules(cold, warm, context);

      ScheduleValidatorOptions options;
      options.k = clamp_k(g, k);
      options.beta = param.beta;
      options.check_approximation_bound = true;
      const ScheduleValidator validator(options);
      EXPECT_TRUE(validator.validate(g, cold).ok()) << context << " (cold)";
      EXPECT_TRUE(validator.validate(g, warm).ok()) << context << " (warm)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WarmStartDifferential,
    ::testing::Values(
        DifferentialCase{601, 1, 20, 12, 40, 60},      // paper-ish weights
        DifferentialCase{602, 0, 10000, 10, 40, 60},   // heavy skew, beta=0
        DifferentialCase{603, 7, 3, 14, 60, 60},       // many weight ties
        DifferentialCase{604, 2, 200, 8, 30, 60}));    // mid skew, small n

// Larger instances exercise longer peel sequences and deeper binary
// searches (more warm-start reuse per run).
TEST(WarmStartDifferential, LargerInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    RandomGraphConfig config;
    config.max_left = 24;
    config.max_right = 24;
    config.max_edges = 200;
    config.max_weight = 500;
    const BipartiteGraph g = random_bipartite(rng, config);
    for (const Algorithm algo : {Algorithm::kGGP, Algorithm::kOGGP}) {
      const Schedule cold = solve_kpbs(g, {6, 1, algo, MatchingEngine::kCold}).schedule;
      const Schedule warm = solve_kpbs(g, {6, 1, algo, MatchingEngine::kWarm}).schedule;
      expect_identical_schedules(
          cold, warm, algorithm_name(algo) + " trial=" + std::to_string(trial));
    }
  }
}

// WRGP-level identity: stricter than schedule equality — the peeled
// matchings must contain the same edge ids in the same order, so even
// synthetic (filler/deficit) edge choices agree between the engines.
TEST(WarmStartDifferential, PeelSequencesIdenticalAtWrgpLevel) {
  Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId n = static_cast<NodeId>(rng.uniform_int(2, 10));
    const int layers = static_cast<int>(rng.uniform_int(2, 6));
    BipartiteGraph cold_g = random_weight_regular(rng, n, layers, 1, 50);
    BipartiteGraph warm_g = cold_g;

    const auto cold_steps = wrgp_peel(cold_g, bottleneck_perfect_matching);
    PeelingContext ctx;
    const auto warm_steps =
        wrgp_peel_warm(warm_g, WarmStrategy::kBottleneck, ctx);

    ASSERT_EQ(cold_steps.size(), warm_steps.size()) << "trial " << trial;
    for (std::size_t s = 0; s < cold_steps.size(); ++s) {
      EXPECT_EQ(cold_steps[s].amount, warm_steps[s].amount)
          << "trial " << trial << " step " << s;
      EXPECT_EQ(cold_steps[s].matching.edges, warm_steps[s].matching.edges)
          << "trial " << trial << " step " << s;
    }
  }
}

// The arbitrary (GGP) warm strategy likewise replays the cold matchings.
TEST(WarmStartDifferential, ArbitraryPeelSequencesIdentical) {
  Rng rng(995);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId n = static_cast<NodeId>(rng.uniform_int(2, 10));
    const int layers = static_cast<int>(rng.uniform_int(2, 6));
    BipartiteGraph cold_g = random_weight_regular(rng, n, layers, 1, 50);
    BipartiteGraph warm_g = cold_g;

    const auto cold_steps = wrgp_peel(cold_g, arbitrary_perfect_matching);
    const auto warm_steps = wrgp_peel_warm(warm_g, WarmStrategy::kArbitrary);

    ASSERT_EQ(cold_steps.size(), warm_steps.size()) << "trial " << trial;
    for (std::size_t s = 0; s < cold_steps.size(); ++s) {
      EXPECT_EQ(cold_steps[s].amount, warm_steps[s].amount)
          << "trial " << trial << " step " << s;
      EXPECT_EQ(cold_steps[s].matching.edges, warm_steps[s].matching.edges)
          << "trial " << trial << " step " << s;
    }
  }
}

// kGGPMaxWeight has no warm path; requesting the warm engine must still
// produce the (cold) reference schedule rather than failing.
TEST(WarmStartDifferential, MaxWeightAblationFallsBackToCold) {
  Rng rng(31);
  RandomGraphConfig config;
  config.max_left = 8;
  config.max_right = 8;
  config.max_edges = 24;
  const BipartiteGraph g = random_bipartite(rng, config);
  const Schedule cold =
      solve_kpbs(g, {3, 1, Algorithm::kGGPMaxWeight, MatchingEngine::kCold}).schedule;
  const Schedule warm =
      solve_kpbs(g, {3, 1, Algorithm::kGGPMaxWeight, MatchingEngine::kWarm}).schedule;
  expect_identical_schedules(cold, warm, "ggp-mw");
}

}  // namespace
}  // namespace redist
