// rpc.v1 over real loopback sockets: the Hello/HelloAck version handshake,
// typed solve round-trips through ClientSession, first-class error
// responses (bad requests, version mismatches) that keep the connection
// usable, and the remote shutdown frame. Codec domain validation is also
// covered here; byte-level mutation fuzzing lives in test_fuzz_parsers.
#include "net/rpc.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "kpbs/schedule_io.hpp"
#include "kpbs/solver.hpp"
#include "net/client_session.hpp"
#include "net/message.hpp"
#include "net/socket.hpp"
#include "robust/retry.hpp"
#include "service/scheduler_service.hpp"
#include "validate/schedule_validator.hpp"

namespace redist {
namespace {

/// A small 3x3 instance with enough structure to need several steps.
rpc::SolveRequest small_request(std::uint64_t request_id) {
  rpc::SolveRequest req;
  req.request_id = request_id;
  req.k = 2;
  req.beta = 1;
  req.senders = 3;
  req.receivers = 3;
  req.entries = {{0, 0, 10}, {0, 1, 4}, {1, 1, 7},
                 {1, 2, 3},  {2, 0, 5}, {2, 2, 8}};
  return req;
}

TEST(Rpc, AlgorithmAndEngineCodesRoundTrip) {
  for (const Algorithm algo : {Algorithm::kGGP, Algorithm::kOGGP,
                               Algorithm::kGGPMaxWeight}) {
    for (const MatchingEngine engine :
         {MatchingEngine::kCold, MatchingEngine::kWarm}) {
      rpc::SolveRequest req = small_request(7);
      req.algorithm = algo;
      req.engine = engine;
      std::vector<char> wire;
      rpc::encode_solve_request(wire, req);
      const rpc::SolveRequest parsed = rpc::decode_solve_request(wire);
      EXPECT_EQ(parsed.algorithm, algo);
      EXPECT_EQ(parsed.engine, engine);
    }
  }
}

TEST(Rpc, DecoderRejectsOutOfDomainRequests) {
  const auto reject = [](rpc::SolveRequest req) {
    std::vector<char> wire;
    rpc::encode_solve_request(wire, req);
    EXPECT_THROW((void)rpc::decode_solve_request(wire), Error);
  };
  {
    rpc::SolveRequest req = small_request(1);
    req.k = 0;  // k must be >= 1
    reject(req);
  }
  {
    rpc::SolveRequest req = small_request(2);
    req.beta = -1;  // negative setup cost
    reject(req);
  }
  {
    rpc::SolveRequest req = small_request(3);
    req.senders = 0;  // empty cluster
    req.entries.clear();
    reject(req);
  }
  {
    rpc::SolveRequest req = small_request(4);
    req.entries.push_back({3, 0, 5});  // sender id == senders (out of range)
    reject(req);
  }
  {
    rpc::SolveRequest req = small_request(5);
    req.entries.push_back({0, 0, 0});  // zero-byte transfer is not an entry
    reject(req);
  }
}

TEST(Rpc, ErrorCodeNamesAreStable) {
  // Wire contract: these names appear in metrics (service.error.<name>)
  // and docs/SERVICE.md; renaming one is a breaking change.
  EXPECT_STREQ(rpc::rpc_error_code_name(rpc::RpcErrorCode::kBadRequest),
               "bad_request");
  EXPECT_STREQ(rpc::rpc_error_code_name(rpc::RpcErrorCode::kVersionMismatch),
               "version_mismatch");
  EXPECT_STREQ(rpc::rpc_error_code_name(rpc::RpcErrorCode::kRateLimited),
               "rate_limited");
  EXPECT_STREQ(rpc::rpc_error_code_name(rpc::RpcErrorCode::kShuttingDown),
               "shutting_down");
  EXPECT_STREQ(rpc::rpc_error_code_name(rpc::RpcErrorCode::kInternal),
               "internal");
  EXPECT_STREQ(rpc::served_from_name(rpc::ServedFrom::kCold), "cold");
  EXPECT_STREQ(rpc::served_from_name(rpc::ServedFrom::kCacheHit),
               "cache_hit");
  EXPECT_STREQ(rpc::served_from_name(rpc::ServedFrom::kWarmNearMiss),
               "warm_near_miss");
}

TEST(Rpc, HandshakeAndSolveRoundTripOverSocket) {
  service::SchedulerService daemon;
  ClientSession session = ClientSession::dial_rpc(daemon.port());

  const rpc::SolveRequest request = small_request(42);
  const rpc::SolveResponse response = session.solve(request);
  EXPECT_EQ(response.request_id, 42u);
  EXPECT_EQ(response.served_from, rpc::ServedFrom::kCold);
  EXPECT_GE(response.evaluation_ratio, 1.0);
  EXPECT_GT(response.lb_den, 0);

  // The shipped schedule must parse and validate against the instance.
  const Schedule schedule = schedule_from_string(response.schedule_text);
  BipartiteGraph g(3, 3);
  for (const rpc::TrafficEntry& e : request.entries) {
    g.add_edge(e.sender, e.receiver, e.bytes);
  }
  ScheduleValidatorOptions options;
  options.k = 2;
  options.beta = 1;
  EXPECT_TRUE(ScheduleValidator(options).validate(g, schedule).ok());
  daemon.stop();
}

TEST(Rpc, VersionMismatchAnswersTypedErrorAtConnectTime) {
  service::SchedulerService daemon;
  TcpStream stream = TcpStream::connect_loopback(daemon.port());
  stream.set_io_timeout_ms(5000);

  std::vector<char> hello;
  rpc::encode_hello(hello, rpc::kRpcProtocolVersion + 41);
  send_message(stream, static_cast<std::uint32_t>(rpc::RpcTag::kHello),
               hello.data(), hello.size());

  std::vector<char> payload;
  const std::uint32_t tag = recv_message(stream, payload);
  ASSERT_EQ(tag, static_cast<std::uint32_t>(rpc::RpcTag::kError));
  const rpc::ErrorResponse err = rpc::decode_error_response(payload);
  EXPECT_EQ(err.code, rpc::RpcErrorCode::kVersionMismatch);
  daemon.stop();
}

TEST(Rpc, DialRpcSurfacesVersionMismatchAfterRetryBudget) {
  service::SchedulerService daemon;
  // A client pinned to a version the server cannot speak fails loudly —
  // the handshake error survives the (small) retry budget.
  ClientSessionOptions options;
  options.retry.max_attempts = 2;
  options.retry.base_delay_ms = 1;
  options.retry.max_delay_ms = 2;
  TcpStream probe = TcpStream::connect_loopback(daemon.port());  // sanity
  probe.set_io_timeout_ms(1000);
  EXPECT_THROW(
      {
        ClientSession session = ClientSession::dial(
            daemon.port(), options, [](TcpStream& stream) {
              std::vector<char> hello;
              rpc::encode_hello(hello, rpc::kRpcProtocolVersion + 1);
              send_message(stream,
                           static_cast<std::uint32_t>(rpc::RpcTag::kHello),
                           hello.data(), hello.size());
              std::vector<char> payload;
              const std::uint32_t tag = recv_message(stream, payload);
              if (tag != static_cast<std::uint32_t>(rpc::RpcTag::kHelloAck)) {
                throw RpcRemoteError(rpc::decode_error_response(payload));
              }
            });
      },
      Error);
  daemon.stop();
}

TEST(Rpc, MalformedSolvePayloadGetsBadRequestAndConnectionSurvives) {
  service::SchedulerService daemon;
  ClientSession session = ClientSession::dial_rpc(daemon.port());

  // Garbage payload under the solve tag: typed kBadRequest, not a hangup.
  const char garbage[] = "definitely not a solve request";
  send_message(session.stream(),
               static_cast<std::uint32_t>(rpc::RpcTag::kSolveRequest),
               garbage, sizeof(garbage));
  std::vector<char> payload;
  const std::uint32_t tag = recv_message(session.stream(), payload);
  ASSERT_EQ(tag, static_cast<std::uint32_t>(rpc::RpcTag::kError));
  EXPECT_EQ(rpc::decode_error_response(payload).code,
            rpc::RpcErrorCode::kBadRequest);

  // The same connection then serves a well-formed request.
  const rpc::SolveResponse response = session.solve(small_request(8));
  EXPECT_EQ(response.request_id, 8u);
  daemon.stop();
}

TEST(Rpc, UnknownTagGetsBadRequest) {
  service::SchedulerService daemon;
  ClientSession session = ClientSession::dial_rpc(daemon.port());
  send_message(session.stream(), 0x9999, nullptr, 0);
  std::vector<char> payload;
  const std::uint32_t tag = recv_message(session.stream(), payload);
  ASSERT_EQ(tag, static_cast<std::uint32_t>(rpc::RpcTag::kError));
  EXPECT_EQ(rpc::decode_error_response(payload).code,
            rpc::RpcErrorCode::kBadRequest);
  daemon.stop();
}

TEST(Rpc, RemoteShutdownStopsTheDaemon) {
  service::SchedulerService daemon;
  ASSERT_FALSE(daemon.stopping());
  {
    ClientSession session = ClientSession::dial_rpc(daemon.port());
    session.shutdown_server();
  }
  // The shutdown frame is processed by the connection handler; the stop
  // flag must flip without any client-side join handle.
  for (int spin = 0; spin < 200 && !daemon.stopping(); ++spin) {
    robust::sleep_ms(10);
  }
  EXPECT_TRUE(daemon.stopping());
  daemon.stop();
}

TEST(Rpc, ShutdownCanBeDisabledByPolicy) {
  service::SchedulerServiceOptions options;
  options.allow_remote_shutdown = false;
  service::SchedulerService daemon(options);
  ClientSession session = ClientSession::dial_rpc(daemon.port());
  session.shutdown_server();
  // Frame is ignored; the daemon keeps serving on the same connection.
  const rpc::SolveResponse response = session.solve(small_request(9));
  EXPECT_EQ(response.request_id, 9u);
  EXPECT_FALSE(daemon.stopping());
  daemon.stop();
}

TEST(Rpc, SolveValidatesRequestIdEcho) {
  // ClientSession::solve rejects a response whose request_id does not echo
  // the request — catching daemon-side bookkeeping bugs at the client.
  service::SchedulerService daemon;
  ClientSession session = ClientSession::dial_rpc(daemon.port());
  const rpc::SolveResponse first = session.solve(small_request(1001));
  EXPECT_EQ(first.request_id, 1001u);
  const rpc::SolveResponse second = session.solve(small_request(1002));
  EXPECT_EQ(second.request_id, 1002u);
  daemon.stop();
}

}  // namespace
}  // namespace redist
