// Deterministic fuzzing of the text parsers (graphs and schedules): random
// mutations of valid inputs must either parse to something structurally
// sound or throw redist::Error — never crash, hang or corrupt memory.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/graphio.hpp"
#include "kpbs/schedule_io.hpp"
#include "kpbs/solver.hpp"
#include "net/rpc.hpp"
#include "workload/random_graphs.hpp"
#include "workload/scenario.hpp"

namespace redist {
namespace {

std::string mutate(Rng& rng, std::string text) {
  const int edits = static_cast<int>(rng.uniform_int(1, 6));
  for (int e = 0; e < edits && !text.empty(); ++e) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // flip to a random printable char
        text[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 1:  // delete
        text.erase(pos, 1);
        break;
      case 2:  // duplicate a chunk
        text.insert(pos, text.substr(pos, std::min<std::size_t>(
                                              8, text.size() - pos)));
        break;
      default:  // truncate
        text.resize(pos);
        break;
    }
  }
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, GraphParserNeverCrashes) {
  Rng rng(GetParam());
  RandomGraphConfig config;
  config.max_left = 8;
  config.max_right = 8;
  config.max_edges = 20;
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const std::string mutated = mutate(rng, graph_to_string(g));
    try {
      const BipartiteGraph parsed = graph_from_string(mutated);
      parsed.check_invariants();  // if it parsed, it must be sound
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

TEST_P(ParserFuzz, ScheduleParserNeverCrashes) {
  Rng rng(GetParam() ^ 0xFEED);
  RandomGraphConfig config;
  config.max_left = 6;
  config.max_right = 6;
  config.max_edges = 12;
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const Schedule s = solve_kpbs(g, {2, 1, Algorithm::kGGP}).schedule;
    const std::string mutated = mutate(rng, schedule_to_string(s));
    try {
      const Schedule parsed = schedule_from_string(mutated);
      (void)parsed.cost(1);  // must be computable without UB
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

// Round-trip property: for any schedule the solvers can produce,
// parse(serialize(s)) must serialize back to the identical byte sequence,
// and the parsed schedule must agree with the original on every observable
// (steps, comms, cost). Serialization must never lose or reorder pieces.
TEST_P(ParserFuzz, ScheduleRoundTripIsIdentity) {
  Rng rng(GetParam() ^ 0xD00D);
  RandomGraphConfig config;
  config.max_left = 10;
  config.max_right = 10;
  config.max_edges = 30;
  for (int trial = 0; trial < 100; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 5));
    const Weight beta = rng.uniform_int(0, 3);
    const Schedule s = solve_kpbs(g, {k, beta, Algorithm::kOGGP}).schedule;

    const std::string text = schedule_to_string(s);
    const Schedule parsed = schedule_from_string(text);
    ASSERT_EQ(schedule_to_string(parsed), text);  // serialize∘parse fixpoint
    ASSERT_EQ(parsed.step_count(), s.step_count());
    ASSERT_EQ(parsed.cost(beta), s.cost(beta));
    ASSERT_EQ(parsed.total_amount(), s.total_amount());
    for (std::size_t i = 0; i < s.steps().size(); ++i) {
      const auto& want = s.steps()[i].comms;
      const auto& got = parsed.steps()[i].comms;
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t c = 0; c < want.size(); ++c) {
        ASSERT_EQ(got[c].sender, want[c].sender);
        ASSERT_EQ(got[c].receiver, want[c].receiver);
        ASSERT_EQ(got[c].amount, want[c].amount);
      }
    }
  }
}

// Second fixpoint application: parse(serialize(parse(serialize(s)))) adds
// nothing new — guards against serializers that "fix up" their input.
TEST_P(ParserFuzz, ScheduleDoubleRoundTripIsStable) {
  Rng rng(GetParam() ^ 0xBEEF);
  RandomGraphConfig config;
  config.max_left = 8;
  config.max_right = 8;
  config.max_edges = 16;
  for (int trial = 0; trial < 50; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const Schedule s = solve_kpbs(g, {3, 1, Algorithm::kGGP}).schedule;
    const std::string once = schedule_to_string(schedule_from_string(
        schedule_to_string(s)));
    const std::string twice = schedule_to_string(schedule_from_string(once));
    ASSERT_EQ(once, twice);
  }
}

// Graph parser round-trip, for symmetry: the graph format is the other
// half of the redist_cli verify pipeline.
TEST_P(ParserFuzz, GraphRoundTripIsIdentity) {
  Rng rng(GetParam() ^ 0xCAFE);
  RandomGraphConfig config;
  config.max_left = 10;
  config.max_right = 10;
  config.max_edges = 30;
  for (int trial = 0; trial < 100; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const std::string text = graph_to_string(g);
    const BipartiteGraph parsed = graph_from_string(text);
    ASSERT_EQ(graph_to_string(parsed), text);
    ASSERT_EQ(parsed.left_count(), g.left_count());
    ASSERT_EQ(parsed.right_count(), g.right_count());
    ASSERT_EQ(parsed.total_weight(), g.total_weight());
    ASSERT_EQ(parsed.alive_edge_count(), g.alive_edge_count());
  }
}

// Malformed schedule inputs must throw redist::Error (and only that), so
// a corrupted schedule file can never crash an executor that loads it.
TEST(ParserFuzz, MalformedSchedulesThrowError) {
  const char* cases[] = {
      "",                                // empty
      "schedule",                        // missing count
      "schedule -1",                     // negative count
      "schedule 1",                      // missing step
      "schedule 1\nstep",                // missing comm count
      "schedule 1\nstep 2\n0 0 5",       // truncated comm list
      "schedule 1\nstep 1\n0 0",         // truncated communication
      "schedule 1\nstep 1\n0 0 x",       // non-numeric amount
      "schedule 1\nstep 99999999999999", // absurd comm count
      "schedule 99999999999999",         // absurd step count
      "sched 1\nstep 0",                 // wrong header tag
      "schedule 1\nstap 0",              // wrong step tag
  };
  for (const char* text : cases) {
    EXPECT_THROW(schedule_from_string(text), Error) << "input: " << text;
  }
}

// Scenario-spec parser (workload/scenario.hpp): the sweep harness and the
// committed regression baselines key on these files, so a corrupted spec
// must never silently materialize a different instance.
TEST_P(ParserFuzz, ScenarioParserNeverCrashes) {
  Rng rng(GetParam() ^ 0x5CE0);
  const std::vector<ScenarioSpec> specs = builtin_scenarios(0.25);
  for (int trial = 0; trial < 200; ++trial) {
    const ScenarioSpec& spec =
        specs[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(specs.size()) - 1))];
    const std::string mutated = mutate(rng, scenario_to_string(spec));
    try {
      const ScenarioSpec parsed = scenario_from_string(mutated);
      parsed.validate();  // if it parsed, every field is in-domain
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

TEST_P(ParserFuzz, ScenarioRoundTripIsIdentity) {
  Rng rng(GetParam() ^ 0x5CE1);
  for (ScenarioSpec spec : builtin_scenarios(0.5)) {
    spec.seed = rng.next();  // any seed must survive the trip
    const std::string text = scenario_to_string(spec);
    const ScenarioSpec parsed = scenario_from_string(text);
    ASSERT_EQ(scenario_to_string(parsed), text);  // serialize∘parse fixpoint
    ASSERT_EQ(parsed.name, spec.name);
    ASSERT_EQ(parsed.kind, spec.kind);
    ASSERT_EQ(parsed.seed, spec.seed);
  }
}

TEST(ParserFuzz, MalformedScenariosThrowError) {
  const char* cases[] = {
      "",                                     // empty
      "scenario",                             // header missing name
      "kind uniform",                         // missing header line
      "scenario x\nkind bogus",               // unknown kind
      "scenario x\nkind uniform extra",       // trailing token
      "scenario x\nseed 1\nseed 2",           // duplicate key
      "scenario x\nnodes 4",                  // truncated pair
      "scenario x\nnodes 0 4",                // out-of-domain size
      "scenario x\nnodes four 4",             // non-numeric
      "scenario x\nbytes 10 5 1",             // min > max
      "scenario x\nsolver 0 1",               // k < 1
      "scenario x\nhot_share 1.0",            // boundary excluded
      "scenario x\nhet_spread 0.25",          // spread < 1
      "scenario x\nstorm 2.0",                // intensity > 1
      "scenario x\nflavor vanilla",           // unknown key
      "scenario Bad Name\nkind uniform",      // invalid name charset
  };
  for (const char* text : cases) {
    EXPECT_THROW(scenario_from_string(text), Error) << "input: " << text;
  }
}

// ---------------------------------------------------------------------------
// rpc.v1 binary codecs (net/rpc.hpp): the daemon decodes these payloads
// straight off untrusted sockets, so every decoder must be total — any
// byte sequence either decodes to an in-domain struct or throws
// redist::Error. Crashing, hanging or over-reading is a security bug.

std::vector<char> mutate_bytes(Rng& rng, std::vector<char> bytes) {
  const int edits = static_cast<int>(rng.uniform_int(1, 8));
  for (int e = 0; e < edits && !bytes.empty(); ++e) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // flip to a random byte
        bytes[pos] = static_cast<char>(rng.uniform_int(0, 255));
        break;
      case 1:  // delete
        bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
      case 2: {  // duplicate a chunk
        const std::size_t n = std::min<std::size_t>(8, bytes.size() - pos);
        std::vector<char> chunk(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                                bytes.begin() +
                                    static_cast<std::ptrdiff_t>(pos + n));
        bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                     chunk.begin(), chunk.end());
        break;
      }
      default:  // truncate
        bytes.resize(pos);
        break;
    }
  }
  return bytes;
}

rpc::SolveRequest random_solve_request(Rng& rng) {
  rpc::SolveRequest req;
  req.request_id = rng.next();
  req.k = static_cast<std::int32_t>(rng.uniform_int(1, 8));
  req.beta = rng.uniform_int(0, 5);
  req.algorithm = rng.uniform_int(0, 1) == 0 ? Algorithm::kOGGP
                                             : Algorithm::kGGP;
  req.engine = rng.uniform_int(0, 1) == 0 ? MatchingEngine::kWarm
                                          : MatchingEngine::kCold;
  req.senders = static_cast<NodeId>(rng.uniform_int(1, 12));
  req.receivers = static_cast<NodeId>(rng.uniform_int(1, 12));
  const int entries = static_cast<int>(rng.uniform_int(0, 20));
  for (int i = 0; i < entries; ++i) {
    req.entries.push_back({static_cast<NodeId>(
                               rng.uniform_int(0, req.senders - 1)),
                           static_cast<NodeId>(
                               rng.uniform_int(0, req.receivers - 1)),
                           rng.uniform_int(1, 1 << 20)});
  }
  return req;
}

TEST_P(ParserFuzz, RpcSolveRequestRoundTripIsIdentity) {
  Rng rng(GetParam() ^ 0x52C0);
  for (int trial = 0; trial < 200; ++trial) {
    const rpc::SolveRequest req = random_solve_request(rng);
    std::vector<char> wire;
    rpc::encode_solve_request(wire, req);
    const rpc::SolveRequest parsed = rpc::decode_solve_request(wire);
    ASSERT_EQ(parsed.request_id, req.request_id);
    ASSERT_EQ(parsed.k, req.k);
    ASSERT_EQ(parsed.beta, req.beta);
    ASSERT_EQ(parsed.algorithm, req.algorithm);
    ASSERT_EQ(parsed.engine, req.engine);
    ASSERT_EQ(parsed.senders, req.senders);
    ASSERT_EQ(parsed.receivers, req.receivers);
    ASSERT_EQ(parsed.entries.size(), req.entries.size());
    for (std::size_t i = 0; i < req.entries.size(); ++i) {
      ASSERT_EQ(parsed.entries[i].sender, req.entries[i].sender);
      ASSERT_EQ(parsed.entries[i].receiver, req.entries[i].receiver);
      ASSERT_EQ(parsed.entries[i].bytes, req.entries[i].bytes);
    }
    // Re-encoding the parse reproduces the identical byte sequence.
    std::vector<char> rewire;
    rpc::encode_solve_request(rewire, parsed);
    ASSERT_EQ(rewire, wire);
  }
}

TEST_P(ParserFuzz, RpcSolveRequestDecoderNeverCrashes) {
  Rng rng(GetParam() ^ 0x52C1);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<char> wire;
    rpc::encode_solve_request(wire, random_solve_request(rng));
    const std::vector<char> mutated = mutate_bytes(rng, std::move(wire));
    try {
      const rpc::SolveRequest parsed = rpc::decode_solve_request(mutated);
      // If it decoded, every domain constraint the decoder promises holds.
      EXPECT_GE(parsed.k, 1);
      EXPECT_GE(parsed.beta, 0);
      EXPECT_GE(parsed.senders, 1);
      EXPECT_GE(parsed.receivers, 1);
      for (const rpc::TrafficEntry& entry : parsed.entries) {
        EXPECT_GE(entry.sender, 0);
        EXPECT_LT(entry.sender, parsed.senders);
        EXPECT_GE(entry.receiver, 0);
        EXPECT_LT(entry.receiver, parsed.receivers);
        EXPECT_GT(entry.bytes, 0);
      }
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

TEST_P(ParserFuzz, RpcSolveResponseRoundTripAndFuzz) {
  Rng rng(GetParam() ^ 0x52C2);
  for (int trial = 0; trial < 200; ++trial) {
    rpc::SolveResponse resp;
    resp.request_id = rng.next();
    resp.solve_id = rng.next();
    resp.served_from = static_cast<rpc::ServedFrom>(rng.uniform_int(0, 2));
    resp.solve_ms = static_cast<double>(rng.uniform_int(0, 1000)) / 8.0;
    resp.lb_min_steps = rng.uniform_int(0, 100);
    resp.lb_num = rng.uniform_int(0, 1 << 20);
    resp.lb_den = rng.uniform_int(1, 64);
    resp.evaluation_ratio = 1.0 + static_cast<double>(rng.uniform_int(0, 64)) / 64.0;
    const int len = static_cast<int>(rng.uniform_int(0, 200));
    for (int c = 0; c < len; ++c) {
      resp.schedule_text.push_back(static_cast<char>(rng.uniform_int(32, 126)));
    }
    std::vector<char> wire;
    rpc::encode_solve_response(wire, resp);
    const rpc::SolveResponse parsed = rpc::decode_solve_response(wire);
    ASSERT_EQ(parsed.request_id, resp.request_id);
    ASSERT_EQ(parsed.solve_id, resp.solve_id);
    ASSERT_EQ(parsed.served_from, resp.served_from);
    ASSERT_EQ(parsed.lb_min_steps, resp.lb_min_steps);
    ASSERT_EQ(parsed.lb_num, resp.lb_num);
    ASSERT_EQ(parsed.lb_den, resp.lb_den);
    ASSERT_EQ(parsed.schedule_text, resp.schedule_text);

    const std::vector<char> mutated = mutate_bytes(rng, std::move(wire));
    try {
      (void)rpc::decode_solve_response(mutated);
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

TEST_P(ParserFuzz, RpcErrorAndHelloDecodersNeverCrash) {
  Rng rng(GetParam() ^ 0x52C3);
  for (int trial = 0; trial < 200; ++trial) {
    rpc::ErrorResponse err;
    err.request_id = rng.next();
    err.code = static_cast<rpc::RpcErrorCode>(rng.uniform_int(1, 5));
    const int len = static_cast<int>(rng.uniform_int(0, 60));
    for (int c = 0; c < len; ++c) {
      err.message.push_back(static_cast<char>(rng.uniform_int(32, 126)));
    }
    std::vector<char> wire;
    rpc::encode_error_response(wire, err);
    const rpc::ErrorResponse parsed = rpc::decode_error_response(wire);
    ASSERT_EQ(parsed.request_id, err.request_id);
    ASSERT_EQ(parsed.code, err.code);
    ASSERT_EQ(parsed.message, err.message);
    try {
      (void)rpc::decode_error_response(mutate_bytes(rng, std::move(wire)));
    } catch (const Error&) {
    }

    std::vector<char> hello;
    rpc::encode_hello(hello, rpc::kRpcProtocolVersion);
    ASSERT_EQ(rpc::decode_hello(hello), rpc::kRpcProtocolVersion);
    try {
      (void)rpc::decode_hello(mutate_bytes(rng, std::move(hello)));
    } catch (const Error&) {
    }
  }
}

// Every strict prefix of a valid encoding must be rejected: the decoders
// read length-prefixed fields sequentially and trailing truncation cannot
// silently produce a shorter-but-valid message.
TEST(ParserFuzz, RpcTruncatedPayloadsThrowError) {
  Rng rng(77);
  const rpc::SolveRequest req = random_solve_request(rng);
  std::vector<char> wire;
  rpc::encode_solve_request(wire, req);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::vector<char> prefix(wire.begin(),
                                   wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)rpc::decode_solve_request(prefix), Error)
        << "prefix length " << cut;
  }
  // Trailing garbage is equally rejected (expect_end contract).
  std::vector<char> padded = wire;
  padded.push_back('\0');
  EXPECT_THROW((void)rpc::decode_solve_request(padded), Error);
}

// Absurd entry counts must be rejected before any allocation is attempted:
// a 16-byte payload claiming 2^60 entries would otherwise ask the decoder
// to reserve exabytes.
TEST(ParserFuzz, RpcAbsurdEntryCountRejectedCheaply) {
  rpc::SolveRequest req;
  req.k = 1;
  req.senders = 2;
  req.receivers = 2;
  req.entries.push_back({0, 0, 1});
  std::vector<char> wire;
  rpc::encode_solve_request(wire, req);
  // The entry count is the u32 immediately before the 16-byte entry block.
  const std::size_t count_at = wire.size() - 16 - 4;
  for (int b = 0; b < 4; ++b) wire[count_at + static_cast<std::size_t>(b)] =
      static_cast<char>(0xFF);
  EXPECT_THROW((void)rpc::decode_solve_request(wire), Error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1001, 2002, 3003, 4004));

TEST(ParserFuzz, PureGarbageIsRejected) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage;
    const int len = static_cast<int>(rng.uniform_int(0, 64));
    for (int c = 0; c < len; ++c) {
      garbage.push_back(static_cast<char>(rng.uniform_int(1, 255)));
    }
    EXPECT_THROW(graph_from_string(garbage), Error) << "trial " << trial;
    EXPECT_THROW(schedule_from_string(garbage), Error) << "trial " << trial;
  }
}

}  // namespace
}  // namespace redist
