// Deterministic fuzzing of the text parsers (graphs and schedules): random
// mutations of valid inputs must either parse to something structurally
// sound or throw redist::Error — never crash, hang or corrupt memory.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/graphio.hpp"
#include "kpbs/schedule_io.hpp"
#include "kpbs/solver.hpp"
#include "workload/random_graphs.hpp"
#include "workload/scenario.hpp"

namespace redist {
namespace {

std::string mutate(Rng& rng, std::string text) {
  const int edits = static_cast<int>(rng.uniform_int(1, 6));
  for (int e = 0; e < edits && !text.empty(); ++e) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // flip to a random printable char
        text[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 1:  // delete
        text.erase(pos, 1);
        break;
      case 2:  // duplicate a chunk
        text.insert(pos, text.substr(pos, std::min<std::size_t>(
                                              8, text.size() - pos)));
        break;
      default:  // truncate
        text.resize(pos);
        break;
    }
  }
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, GraphParserNeverCrashes) {
  Rng rng(GetParam());
  RandomGraphConfig config;
  config.max_left = 8;
  config.max_right = 8;
  config.max_edges = 20;
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const std::string mutated = mutate(rng, graph_to_string(g));
    try {
      const BipartiteGraph parsed = graph_from_string(mutated);
      parsed.check_invariants();  // if it parsed, it must be sound
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

TEST_P(ParserFuzz, ScheduleParserNeverCrashes) {
  Rng rng(GetParam() ^ 0xFEED);
  RandomGraphConfig config;
  config.max_left = 6;
  config.max_right = 6;
  config.max_edges = 12;
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const Schedule s = solve_kpbs(g, {2, 1, Algorithm::kGGP}).schedule;
    const std::string mutated = mutate(rng, schedule_to_string(s));
    try {
      const Schedule parsed = schedule_from_string(mutated);
      (void)parsed.cost(1);  // must be computable without UB
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

// Round-trip property: for any schedule the solvers can produce,
// parse(serialize(s)) must serialize back to the identical byte sequence,
// and the parsed schedule must agree with the original on every observable
// (steps, comms, cost). Serialization must never lose or reorder pieces.
TEST_P(ParserFuzz, ScheduleRoundTripIsIdentity) {
  Rng rng(GetParam() ^ 0xD00D);
  RandomGraphConfig config;
  config.max_left = 10;
  config.max_right = 10;
  config.max_edges = 30;
  for (int trial = 0; trial < 100; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 5));
    const Weight beta = rng.uniform_int(0, 3);
    const Schedule s = solve_kpbs(g, {k, beta, Algorithm::kOGGP}).schedule;

    const std::string text = schedule_to_string(s);
    const Schedule parsed = schedule_from_string(text);
    ASSERT_EQ(schedule_to_string(parsed), text);  // serialize∘parse fixpoint
    ASSERT_EQ(parsed.step_count(), s.step_count());
    ASSERT_EQ(parsed.cost(beta), s.cost(beta));
    ASSERT_EQ(parsed.total_amount(), s.total_amount());
    for (std::size_t i = 0; i < s.steps().size(); ++i) {
      const auto& want = s.steps()[i].comms;
      const auto& got = parsed.steps()[i].comms;
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t c = 0; c < want.size(); ++c) {
        ASSERT_EQ(got[c].sender, want[c].sender);
        ASSERT_EQ(got[c].receiver, want[c].receiver);
        ASSERT_EQ(got[c].amount, want[c].amount);
      }
    }
  }
}

// Second fixpoint application: parse(serialize(parse(serialize(s)))) adds
// nothing new — guards against serializers that "fix up" their input.
TEST_P(ParserFuzz, ScheduleDoubleRoundTripIsStable) {
  Rng rng(GetParam() ^ 0xBEEF);
  RandomGraphConfig config;
  config.max_left = 8;
  config.max_right = 8;
  config.max_edges = 16;
  for (int trial = 0; trial < 50; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const Schedule s = solve_kpbs(g, {3, 1, Algorithm::kGGP}).schedule;
    const std::string once = schedule_to_string(schedule_from_string(
        schedule_to_string(s)));
    const std::string twice = schedule_to_string(schedule_from_string(once));
    ASSERT_EQ(once, twice);
  }
}

// Graph parser round-trip, for symmetry: the graph format is the other
// half of the redist_cli verify pipeline.
TEST_P(ParserFuzz, GraphRoundTripIsIdentity) {
  Rng rng(GetParam() ^ 0xCAFE);
  RandomGraphConfig config;
  config.max_left = 10;
  config.max_right = 10;
  config.max_edges = 30;
  for (int trial = 0; trial < 100; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const std::string text = graph_to_string(g);
    const BipartiteGraph parsed = graph_from_string(text);
    ASSERT_EQ(graph_to_string(parsed), text);
    ASSERT_EQ(parsed.left_count(), g.left_count());
    ASSERT_EQ(parsed.right_count(), g.right_count());
    ASSERT_EQ(parsed.total_weight(), g.total_weight());
    ASSERT_EQ(parsed.alive_edge_count(), g.alive_edge_count());
  }
}

// Malformed schedule inputs must throw redist::Error (and only that), so
// a corrupted schedule file can never crash an executor that loads it.
TEST(ParserFuzz, MalformedSchedulesThrowError) {
  const char* cases[] = {
      "",                                // empty
      "schedule",                        // missing count
      "schedule -1",                     // negative count
      "schedule 1",                      // missing step
      "schedule 1\nstep",                // missing comm count
      "schedule 1\nstep 2\n0 0 5",       // truncated comm list
      "schedule 1\nstep 1\n0 0",         // truncated communication
      "schedule 1\nstep 1\n0 0 x",       // non-numeric amount
      "schedule 1\nstep 99999999999999", // absurd comm count
      "schedule 99999999999999",         // absurd step count
      "sched 1\nstep 0",                 // wrong header tag
      "schedule 1\nstap 0",              // wrong step tag
  };
  for (const char* text : cases) {
    EXPECT_THROW(schedule_from_string(text), Error) << "input: " << text;
  }
}

// Scenario-spec parser (workload/scenario.hpp): the sweep harness and the
// committed regression baselines key on these files, so a corrupted spec
// must never silently materialize a different instance.
TEST_P(ParserFuzz, ScenarioParserNeverCrashes) {
  Rng rng(GetParam() ^ 0x5CE0);
  const std::vector<ScenarioSpec> specs = builtin_scenarios(0.25);
  for (int trial = 0; trial < 200; ++trial) {
    const ScenarioSpec& spec =
        specs[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(specs.size()) - 1))];
    const std::string mutated = mutate(rng, scenario_to_string(spec));
    try {
      const ScenarioSpec parsed = scenario_from_string(mutated);
      parsed.validate();  // if it parsed, every field is in-domain
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

TEST_P(ParserFuzz, ScenarioRoundTripIsIdentity) {
  Rng rng(GetParam() ^ 0x5CE1);
  for (ScenarioSpec spec : builtin_scenarios(0.5)) {
    spec.seed = rng.next();  // any seed must survive the trip
    const std::string text = scenario_to_string(spec);
    const ScenarioSpec parsed = scenario_from_string(text);
    ASSERT_EQ(scenario_to_string(parsed), text);  // serialize∘parse fixpoint
    ASSERT_EQ(parsed.name, spec.name);
    ASSERT_EQ(parsed.kind, spec.kind);
    ASSERT_EQ(parsed.seed, spec.seed);
  }
}

TEST(ParserFuzz, MalformedScenariosThrowError) {
  const char* cases[] = {
      "",                                     // empty
      "scenario",                             // header missing name
      "kind uniform",                         // missing header line
      "scenario x\nkind bogus",               // unknown kind
      "scenario x\nkind uniform extra",       // trailing token
      "scenario x\nseed 1\nseed 2",           // duplicate key
      "scenario x\nnodes 4",                  // truncated pair
      "scenario x\nnodes 0 4",                // out-of-domain size
      "scenario x\nnodes four 4",             // non-numeric
      "scenario x\nbytes 10 5 1",             // min > max
      "scenario x\nsolver 0 1",               // k < 1
      "scenario x\nhot_share 1.0",            // boundary excluded
      "scenario x\nhet_spread 0.25",          // spread < 1
      "scenario x\nstorm 2.0",                // intensity > 1
      "scenario x\nflavor vanilla",           // unknown key
      "scenario Bad Name\nkind uniform",      // invalid name charset
  };
  for (const char* text : cases) {
    EXPECT_THROW(scenario_from_string(text), Error) << "input: " << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1001, 2002, 3003, 4004));

TEST(ParserFuzz, PureGarbageIsRejected) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage;
    const int len = static_cast<int>(rng.uniform_int(0, 64));
    for (int c = 0; c < len; ++c) {
      garbage.push_back(static_cast<char>(rng.uniform_int(1, 255)));
    }
    EXPECT_THROW(graph_from_string(garbage), Error) << "trial " << trial;
    EXPECT_THROW(schedule_from_string(garbage), Error) << "trial " << trial;
  }
}

}  // namespace
}  // namespace redist
