// Deterministic fuzzing of the text parsers (graphs and schedules): random
// mutations of valid inputs must either parse to something structurally
// sound or throw redist::Error — never crash, hang or corrupt memory.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/graphio.hpp"
#include "kpbs/schedule_io.hpp"
#include "kpbs/solver.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

std::string mutate(Rng& rng, std::string text) {
  const int edits = static_cast<int>(rng.uniform_int(1, 6));
  for (int e = 0; e < edits && !text.empty(); ++e) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // flip to a random printable char
        text[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 1:  // delete
        text.erase(pos, 1);
        break;
      case 2:  // duplicate a chunk
        text.insert(pos, text.substr(pos, std::min<std::size_t>(
                                              8, text.size() - pos)));
        break;
      default:  // truncate
        text.resize(pos);
        break;
    }
  }
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, GraphParserNeverCrashes) {
  Rng rng(GetParam());
  RandomGraphConfig config;
  config.max_left = 8;
  config.max_right = 8;
  config.max_edges = 20;
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const std::string mutated = mutate(rng, graph_to_string(g));
    try {
      const BipartiteGraph parsed = graph_from_string(mutated);
      parsed.check_invariants();  // if it parsed, it must be sound
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

TEST_P(ParserFuzz, ScheduleParserNeverCrashes) {
  Rng rng(GetParam() ^ 0xFEED);
  RandomGraphConfig config;
  config.max_left = 6;
  config.max_right = 6;
  config.max_edges = 12;
  for (int trial = 0; trial < 200; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const Schedule s = solve_kpbs(g, 2, 1, Algorithm::kGGP);
    const std::string mutated = mutate(rng, schedule_to_string(s));
    try {
      const Schedule parsed = schedule_from_string(mutated);
      (void)parsed.cost(1);  // must be computable without UB
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1001, 2002, 3003, 4004));

TEST(ParserFuzz, PureGarbageIsRejected) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage;
    const int len = static_cast<int>(rng.uniform_int(0, 64));
    for (int c = 0; c < len; ++c) {
      garbage.push_back(static_cast<char>(rng.uniform_int(1, 255)));
    }
    EXPECT_THROW(graph_from_string(garbage), Error) << "trial " << trial;
    EXPECT_THROW(schedule_from_string(garbage), Error) << "trial " << trial;
  }
}

}  // namespace
}  // namespace redist
