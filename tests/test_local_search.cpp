#include "baselines/local_search.hpp"

#include <gtest/gtest.h>

#include "baselines/list_scheduling.hpp"
#include "common/rng.hpp"
#include "kpbs/lower_bound.hpp"
#include "kpbs/regularize.hpp"
#include "kpbs/solver.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

TEST(LocalSearch, FixesObviouslyBadPlacement) {
  // Two comms that could share a step but were put in separate ones.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 5);
  g.add_edge(1, 1, 5);
  Schedule s;
  s.add_step(Step{{{0, 0, 5}}});
  s.add_step(Step{{{1, 1, 5}}});
  const LocalSearchStats stats = improve_schedule(g, 2, 1, s);
  EXPECT_EQ(s.step_count(), 1u);
  EXPECT_EQ(s.cost(1), 6);
  EXPECT_EQ(stats.initial_cost, 12);
  EXPECT_EQ(stats.final_cost, 6);
  EXPECT_GE(stats.relocations, 1);
}

TEST(LocalSearch, SwapUntanglesMismatchedDurations) {
  // Steps {10, 1} and {9, 2}: swapping the 1 and 2 gives {10, 2} and
  // {9, 1} — durations stay 10 and 9, no gain; but pairing 10 with 9 and
  // 1 with 2 via relocation is blocked by ports. Construct a case where a
  // swap strictly helps: {10(a->x), 2(b->y)} and {9(b->x?)}...
  // Simpler: steps {10, 1} and {2} with the 1 relocatable into step 2.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 10);
  g.add_edge(1, 1, 1);
  g.add_edge(1, 0, 2);
  Schedule s;
  s.add_step(Step{{{0, 0, 10}, {1, 1, 1}}});
  s.add_step(Step{{{1, 0, 2}}});
  const Weight before = s.cost(1);
  improve_schedule(g, 2, 1, s);
  EXPECT_LE(s.cost(1), before);
  validate_schedule(g, s, 2);
}

TEST(LocalSearch, NeverBreaksFeasibilityOrIncreasesCost) {
  Rng rng(60);
  RandomGraphConfig config;
  config.max_left = 8;
  config.max_right = 8;
  config.max_edges = 24;
  for (int trial = 0; trial < 15; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 8));
    const Weight beta = rng.uniform_int(0, 3);
    Schedule s = list_schedule(g, k);
    const Weight before = s.cost(beta);
    const LocalSearchStats stats =
        improve_schedule(g, k, beta, s, /*max_passes=*/8);
    validate_schedule(g, s, clamp_k(g, k));
    ASSERT_LE(s.cost(beta), before);
    ASSERT_EQ(stats.final_cost, s.cost(beta));
    ASSERT_GE(Rational(s.cost(beta)),
              kpbs_lower_bound(g, k, beta).value());
  }
}

TEST(LocalSearch, IdempotentOnOptimizedInput) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 5);
  g.add_edge(1, 1, 5);
  Schedule s;
  s.add_step(Step{{{0, 0, 5}, {1, 1, 5}}});
  const LocalSearchStats stats = improve_schedule(g, 2, 1, s);
  EXPECT_EQ(stats.relocations + stats.swaps, 0);
  EXPECT_EQ(stats.passes, 1);
  EXPECT_EQ(s.step_count(), 1u);
}

TEST(LocalSearch, RejectsInfeasibleInput) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0, 3);
  Schedule incomplete;  // delivers nothing
  EXPECT_THROW(improve_schedule(g, 1, 1, incomplete), Error);
}

TEST(LocalSearch, HonorsKWhenRelocating) {
  // k = 1: no relocation can merge steps even though ports are free.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0, 5);
  g.add_edge(1, 1, 5);
  Schedule s;
  s.add_step(Step{{{0, 0, 5}}});
  s.add_step(Step{{{1, 1, 5}}});
  improve_schedule(g, 1, 1, s);
  EXPECT_EQ(s.step_count(), 2u);
}

}  // namespace
}  // namespace redist
