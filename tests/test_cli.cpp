// End-to-end tests of tools/redist_cli: every subcommand exercised against
// real files in a temp directory. The binary path comes from CMake via the
// REDIST_CLI_PATH compile definition.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace redist {
namespace {

std::string temp_dir() {
  static const std::string dir = []() {
    char tmpl[] = "/tmp/redist_cli_test_XXXXXX";
    const char* made = mkdtemp(tmpl);
    return std::string(made != nullptr ? made : "/tmp");
  }();
  return dir;
}

struct CommandResult {
  int status = -1;
  std::string output;
};

CommandResult run_cli(const std::string& args) {
  const std::string command =
      std::string(REDIST_CLI_PATH) + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  result.status = pclose(pipe);
  return result;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Cli, NoArgumentsShowsUsage) {
  const CommandResult r = run_cli("");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("usage"), std::string::npos);
}

TEST(Cli, UnknownSubcommandFails) {
  const CommandResult r = run_cli("frobnicate");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("unknown subcommand"), std::string::npos);
}

TEST(Cli, GenerateSolveAnalyzeGanttPipeline) {
  const std::string graph = temp_dir() + "/g.txt";
  const std::string sched = temp_dir() + "/s.txt";
  const std::string svg = temp_dir() + "/g.svg";

  const CommandResult gen = run_cli(
      "generate --out=" + graph + " --seed=5 --max-nodes=8 --max-edges=20");
  ASSERT_EQ(gen.status, 0) << gen.output;
  EXPECT_FALSE(slurp(graph).empty());

  const CommandResult solve = run_cli("solve --in=" + graph +
                                      " --k=3 --beta=1 --algo=oggp --out=" +
                                      sched + " --quiet");
  ASSERT_EQ(solve.status, 0) << solve.output;
  EXPECT_NE(solve.output.find("OGGP:"), std::string::npos);
  EXPECT_NE(solve.output.find("ratio"), std::string::npos);
  EXPECT_EQ(slurp(sched).rfind("schedule ", 0), 0u);

  const CommandResult lb = run_cli("lb --in=" + graph + " --k=3");
  ASSERT_EQ(lb.status, 0) << lb.output;
  EXPECT_NE(lb.output.find("lower bound"), std::string::npos);

  const CommandResult analyze =
      run_cli("analyze --in=" + graph + " --k=3 --algo=ggp");
  ASSERT_EQ(analyze.status, 0) << analyze.output;
  EXPECT_NE(analyze.output.find("slot utilization"), std::string::npos);
  EXPECT_NE(analyze.output.find("barrier-relaxed"), std::string::npos);

  const CommandResult gantt =
      run_cli("gantt --in=" + graph + " --out=" + svg + " --k=3");
  ASSERT_EQ(gantt.status, 0) << gantt.output;
  const std::string rendered = slurp(svg);
  EXPECT_EQ(rendered.rfind("<svg", 0), 0u);
  EXPECT_NE(rendered.find("</svg>"), std::string::npos);
}

TEST(Cli, VerifyAcceptsSolverOutput) {
  const std::string graph = temp_dir() + "/verify_g.txt";
  const std::string sched = temp_dir() + "/verify_s.txt";
  ASSERT_EQ(run_cli("generate --out=" + graph +
                    " --seed=7 --max-nodes=8 --max-edges=20")
                .status,
            0);
  ASSERT_EQ(run_cli("solve --in=" + graph + " --k=3 --beta=1 --out=" + sched +
                    " --quiet")
                .status,
            0);
  const CommandResult ok =
      run_cli("verify --in=" + graph + " --schedule=" + sched +
              " --k=3 --beta=1 --bound");
  EXPECT_EQ(ok.status, 0) << ok.output;
  EXPECT_NE(ok.output.find("VALID"), std::string::npos);
}

TEST(Cli, VerifyRejectsTamperedSchedule) {
  const std::string graph = temp_dir() + "/tamper_g.txt";
  const std::string sched = temp_dir() + "/tamper_s.txt";
  ASSERT_EQ(run_cli("generate --out=" + graph +
                    " --seed=7 --max-nodes=8 --max-edges=20")
                .status,
            0);
  ASSERT_EQ(run_cli("solve --in=" + graph + " --k=3 --beta=1 --out=" + sched +
                    " --quiet")
                .status,
            0);
  // Inflate the last communication's amount: the pair now over-transfers.
  std::string text = slurp(sched);
  const std::size_t cut = text.find_last_not_of(" \n");
  ASSERT_NE(cut, std::string::npos);
  const std::size_t digits = text.find_last_not_of("0123456789", cut);
  ASSERT_NE(digits, std::string::npos);
  const long long amount = std::stoll(text.substr(digits + 1, cut - digits));
  text = text.substr(0, digits + 1) + std::to_string(amount + 1) + "\n";
  std::ofstream(sched) << text;

  const CommandResult bad = run_cli("verify --in=" + graph +
                                    " --schedule=" + sched + " --k=3 --beta=1");
  EXPECT_NE(bad.status, 0);
  EXPECT_NE(bad.output.find("INVALID"), std::string::npos) << bad.output;
  EXPECT_NE(bad.output.find("coverage"), std::string::npos) << bad.output;
}

TEST(Cli, SolveWritesMetricsAndTrace) {
  const std::string graph = temp_dir() + "/telemetry_g.txt";
  const std::string metrics = temp_dir() + "/telemetry_m.json";
  const std::string trace = temp_dir() + "/telemetry_t.json";
  // Seed 7 yields a 9x4, 31-edge instance — large enough that the warm
  // bottleneck search actually probes and Hopcroft–Karp runs phases.
  ASSERT_EQ(run_cli("generate --out=" + graph +
                    " --seed=7 --max-nodes=12 --max-edges=60")
                .status,
            0);
  const CommandResult solve =
      run_cli("solve --in=" + graph + " --k=3 --engine=warm --quiet" +
              " --metrics-out=" + metrics + " --trace-out=" + trace);
  ASSERT_EQ(solve.status, 0) << solve.output;
  EXPECT_NE(solve.output.find("metrics written to"), std::string::npos);
  EXPECT_NE(solve.output.find("trace written to"), std::string::npos);

  const std::string metrics_json = slurp(metrics);
  EXPECT_NE(metrics_json.find("\"schema\": \"redist.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(metrics_json.find("\"wrgp.steps\""), std::string::npos);
  EXPECT_NE(metrics_json.find("\"warm.ledger.hits\""), std::string::npos);
  EXPECT_NE(metrics_json.find("\"bottleneck.probes\""), std::string::npos);

  const std::string trace_json = slurp(trace);
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  for (const char* span : {"\"solve_kpbs\"", "\"regularize\"", "\"wrgp.step\"",
                           "\"bottleneck.probe\"", "\"hk.phase\""}) {
    EXPECT_NE(trace_json.find(span), std::string::npos) << span;
  }
}

TEST(Cli, SolveWritesMetricsCsv) {
  const std::string graph = temp_dir() + "/telemetry_csv_g.txt";
  const std::string metrics = temp_dir() + "/telemetry_m.csv";
  ASSERT_EQ(run_cli("generate --out=" + graph +
                    " --seed=12 --max-nodes=8 --max-edges=20")
                .status,
            0);
  ASSERT_EQ(run_cli("solve --in=" + graph + " --k=3 --quiet --metrics-out=" +
                    metrics)
                .status,
            0);
  const std::string csv = slurp(metrics);
  EXPECT_EQ(csv.rfind("name,kind,count,value,mean,min,max,p50,p95,p99\n", 0),
            0u);
  EXPECT_NE(csv.find("wrgp.steps,counter,"), std::string::npos);
}

TEST(Cli, BatchPrintsSummaryTableAndMetrics) {
  const std::string graph = temp_dir() + "/batch_g.txt";
  const std::string metrics = temp_dir() + "/batch_m.json";
  ASSERT_EQ(run_cli("generate --out=" + graph +
                    " --seed=13 --max-nodes=8 --max-edges=24")
                .status,
            0);
  const CommandResult batch =
      run_cli("batch --in=" + graph + "," + graph +
              " --k=3 --threads=2 --metrics-out=" + metrics);
  ASSERT_EQ(batch.status, 0) << batch.output;
  EXPECT_NE(batch.output.find("instance"), std::string::npos);
  EXPECT_NE(batch.output.find("solve_ms"), std::string::npos);
  EXPECT_NE(batch.output.find("instances/s"), std::string::npos);
  const std::string metrics_json = slurp(metrics);
  EXPECT_NE(metrics_json.find("\"kpbs.batch.instances\": 2"),
            std::string::npos);
  EXPECT_NE(metrics_json.find("\"runtime.pool.tasks\": 2"),
            std::string::npos);
}

TEST(Cli, SimulateReportsBothModes) {
  const std::string graph = temp_dir() + "/sim.txt";
  ASSERT_EQ(run_cli("generate --out=" + graph +
                    " --seed=2 --max-nodes=5 --max-edges=10")
                .status,
            0);
  const CommandResult sim = run_cli("simulate --in=" + graph + " --k=2");
  ASSERT_EQ(sim.status, 0) << sim.output;
  EXPECT_NE(sim.output.find("brute force:"), std::string::npos);
  EXPECT_NE(sim.output.find("OGGP:"), std::string::npos);
}

TEST(Cli, BadAlgorithmNameFails) {
  const std::string graph = temp_dir() + "/bad.txt";
  ASSERT_EQ(run_cli("generate --out=" + graph + " --seed=1").status, 0);
  const CommandResult r = run_cli("solve --in=" + graph + " --algo=magic");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("unknown algorithm"), std::string::npos);
}

TEST(Cli, MissingInputFileFails) {
  const CommandResult r = run_cli("solve --in=/nonexistent/graph.txt");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos);
}

TEST(Cli, UnknownFlagFails) {
  const std::string graph = temp_dir() + "/flags.txt";
  ASSERT_EQ(run_cli("generate --out=" + graph + " --seed=1").status, 0);
  const CommandResult r = run_cli("solve --in=" + graph + " --tpyo=3");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("unknown flag"), std::string::npos);
}

}  // namespace
}  // namespace redist
