// Adversarial instance families. The paper notes "a set of suboptimal
// examples reaching the approximation ratio of 2 may be found in [19]";
// these structured families pin down where each algorithm's ratio actually
// lands and act as a regression corpus (any solver change that worsens a
// ratio beyond the recorded ceiling fails here).
#include <gtest/gtest.h>

#include "kpbs/lower_bound.hpp"
#include "kpbs/regularize.hpp"
#include "kpbs/solver.hpp"

namespace redist {
namespace {

double ratio(const BipartiteGraph& g, int k, Weight beta, Algorithm algo) {
  const Schedule s = solve_kpbs(g, {k, beta, algo}).schedule;
  validate_schedule(g, s, clamp_k(g, k));
  return static_cast<double>(s.cost(beta)) /
         kpbs_lower_bound(g, k, beta).value_double();
}

// Family 1 — interlocked heavy/light cycle: weights alternate around an
// even cycle so arbitrary matchings mix heavy and light edges and fragment
// badly, while the bottleneck matching peels cleanly.
BipartiteGraph heavy_light_cycle(NodeId n, Weight heavy, Weight light) {
  BipartiteGraph g(n, n);
  for (NodeId i = 0; i < n; ++i) {
    g.add_edge(i, i, heavy);
    g.add_edge(i, (i + 1) % n, light);
  }
  return g;
}

TEST(Regression, HeavyLightCycleOggpIsNearOptimal) {
  const BipartiteGraph g = heavy_light_cycle(8, 50, 1);
  EXPECT_LT(ratio(g, 8, 1, Algorithm::kOGGP), 1.05);
  EXPECT_LT(ratio(g, 8, 1, Algorithm::kGGP), 2.0);
}

// Family 2 — beta-dominated unit star: every edge takes one unit and beta
// is huge; the step count is everything. Degree forces Delta steps; the
// solvers must not exceed that materially.
TEST(Regression, UnitStarWithHugeBeta) {
  BipartiteGraph g(1, 10);
  for (NodeId j = 0; j < 10; ++j) g.add_edge(0, j, 1);
  for (const Algorithm algo :
       {Algorithm::kGGP, Algorithm::kOGGP, Algorithm::kGGPMaxWeight}) {
    const Schedule s = solve_kpbs(g, {10, 1000, algo}).schedule;
    validate_schedule(g, s, 1);
    EXPECT_EQ(s.step_count(), 10u) << algorithm_name(algo);
    EXPECT_LT(ratio(g, 10, 1000, algo), 1.01) << algorithm_name(algo);
  }
}

// Family 3 — k = 1 serialization: everything must go one at a time, so
// every algorithm should hit the lower bound exactly (cost = m*beta + P).
TEST(Regression, KOneIsAlwaysOptimal) {
  BipartiteGraph g(4, 4);
  g.add_edge(0, 1, 7);
  g.add_edge(1, 3, 2);
  g.add_edge(2, 0, 9);
  g.add_edge(3, 2, 4);
  g.add_edge(0, 2, 1);
  for (const Algorithm algo :
       {Algorithm::kGGP, Algorithm::kOGGP, Algorithm::kGGPMaxWeight}) {
    EXPECT_DOUBLE_EQ(ratio(g, 1, 3, algo), 1.0) << algorithm_name(algo);
  }
}

// Family 4 — near-worst case for peeling with beta ~ weights: a dense
// block of unit edges where the lower bound's step term is m/k but any
// uniform peeling pays Delta-ish steps. Records the observed ceilings.
TEST(Regression, DenseUnitBlockCeilings) {
  const NodeId n = 10;
  BipartiteGraph g(n, n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) g.add_edge(i, j, 1);
  }
  // With k = n the coloring-like structure gives exactly n steps = Delta,
  // matching the bound: ratio 1.
  EXPECT_DOUBLE_EQ(ratio(g, n, 1, Algorithm::kOGGP), 1.0);
  // With k = 3 the bound interleaves: steps >= ceil(100/3) = 34, and the
  // peeling achieves it up to regularization slack. Ceiling recorded at
  // 1.25 (measured ~1.15).
  EXPECT_LT(ratio(g, 3, 1, Algorithm::kOGGP), 1.25);
  EXPECT_LT(ratio(g, 3, 1, Algorithm::kGGP), 1.25);
}

// Family 5 — single giant edge among dust: preemption must not fragment
// the giant edge beyond reason when beta is significant.
TEST(Regression, GiantAmongDust) {
  BipartiteGraph g(5, 5);
  g.add_edge(0, 0, 1000);
  for (NodeId i = 1; i < 5; ++i) g.add_edge(i, i, 1);
  for (const Algorithm algo : {Algorithm::kGGP, Algorithm::kOGGP}) {
    const double r = ratio(g, 5, 10, algo);
    EXPECT_LT(r, 1.10) << algorithm_name(algo);
  }
}

// Family 6 — the ratio-2 pressure point from Figure 9's regime: beta equal
// to the weight scale, k unconstrained. The paper measured up to 1.8 (GGP)
// and 1.6 (OGGP); we pin slightly looser ceilings to stay robust across
// matching tie-breaks.
TEST(Regression, BetaEqualsWeightsPressure) {
  BipartiteGraph g(6, 6);
  // Two stacked permutations plus scattered extras.
  for (NodeId i = 0; i < 6; ++i) g.add_edge(i, i, 3);
  for (NodeId i = 0; i < 6; ++i) g.add_edge(i, (i + 1) % 6, 2);
  g.add_edge(0, 2, 1);
  g.add_edge(3, 5, 1);
  const double ggp = ratio(g, 6, 3, Algorithm::kGGP);
  const double oggp = ratio(g, 6, 3, Algorithm::kOGGP);
  EXPECT_LT(ggp, 2.0);
  EXPECT_LT(oggp, 1.7);
  EXPECT_LE(oggp, ggp + 1e-9);
}

// Family 7 — rectangular extremes: 1 x n and n x 1 graphs exercise the
// clamping and regularization corner cases.
TEST(Regression, RectangularExtremes) {
  for (const bool wide : {false, true}) {
    BipartiteGraph g(wide ? 1 : 12, wide ? 12 : 1);
    for (NodeId x = 0; x < 12; ++x) {
      if (wide) {
        g.add_edge(0, x, 1 + x % 4);
      } else {
        g.add_edge(x, 0, 1 + x % 4);
      }
    }
    for (const Algorithm algo : {Algorithm::kGGP, Algorithm::kOGGP}) {
      const double r = ratio(g, 40, 1, algo);
      EXPECT_DOUBLE_EQ(r, 1.0) << (wide ? "wide" : "tall") << " "
                               << algorithm_name(algo);
    }
  }
}

}  // namespace
}  // namespace redist
