// Tests for the unified SolverOptions/SolveResult surface (kpbs/options):
// SolveResult's derived fields against their first-principles definitions,
// equivalence of the deprecated positional overload with the new one, the
// shared --algo/--engine parsers, and the single flag surface used by the
// CLI and benchmarks.
#include "kpbs/options.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kpbs/lower_bound.hpp"
#include "kpbs/solver.hpp"
#include "workload/random_graphs.hpp"

namespace redist {
namespace {

BipartiteGraph demo_graph() {
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0, 10);
  g.add_edge(0, 1, 4);
  g.add_edge(1, 1, 7);
  g.add_edge(2, 2, 3);
  g.add_edge(2, 0, 1);
  return g;
}

void expect_identical_schedules(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.step_count(), b.step_count());
  for (std::size_t s = 0; s < a.step_count(); ++s) {
    const auto& sa = a.steps()[s].comms;
    const auto& sb = b.steps()[s].comms;
    ASSERT_EQ(sa.size(), sb.size()) << "step " << s;
    for (std::size_t c = 0; c < sa.size(); ++c) {
      EXPECT_EQ(sa[c].sender, sb[c].sender) << "step " << s;
      EXPECT_EQ(sa[c].receiver, sb[c].receiver) << "step " << s;
      EXPECT_EQ(sa[c].amount, sb[c].amount) << "step " << s;
    }
  }
}

TEST(SolverOptions, DefaultsAreWarmOggp) {
  const SolverOptions options;
  EXPECT_EQ(options.k, 1);
  EXPECT_EQ(options.beta, 1);
  EXPECT_EQ(options.algorithm, Algorithm::kOGGP);
  EXPECT_EQ(options.engine, MatchingEngine::kWarm);
}

TEST(SolverOptions, SolveResultFieldsMatchFirstPrinciples) {
  const BipartiteGraph g = demo_graph();
  const SolverOptions options{2, 3, Algorithm::kOGGP, MatchingEngine::kWarm};
  const SolveResult result = solve_kpbs(g, options);
  validate_schedule(g, result.schedule, options.k);

  const LowerBound reference = kpbs_lower_bound(g, options.k, options.beta);
  EXPECT_EQ(result.lower_bound.min_steps, reference.min_steps);
  EXPECT_EQ(result.lower_bound.beta, reference.beta);
  EXPECT_DOUBLE_EQ(result.lower_bound.value_double(),
                   reference.value_double());

  const double expected_ratio =
      static_cast<double>(result.schedule.cost(options.beta)) /
      reference.value_double();
  EXPECT_DOUBLE_EQ(result.evaluation_ratio, expected_ratio);
  EXPECT_GE(result.evaluation_ratio, 1.0);
  EXPECT_GE(result.solve_ms, 0.0);
}

TEST(SolverOptions, EmptyDemandHasUnitRatio) {
  const BipartiteGraph g(4, 4);
  const SolveResult result = solve_kpbs(g, SolverOptions{2, 1});
  EXPECT_EQ(result.schedule.step_count(), 0u);
  EXPECT_DOUBLE_EQ(result.evaluation_ratio, 1.0);
}

// The positional overload is gone (deprecation window closed). This pins
// what replaced the old equivalence check: the engine field of
// SolverOptions is the only remaining axis the positional API ever
// defaulted differently, and cold/warm stay bit-identical through it.
TEST(SolverOptions, RemovedPositionalOverloadSemanticsLiveInOptions) {
  Rng rng(2026);
  RandomGraphConfig config;
  config.max_left = 6;
  config.max_right = 6;
  config.max_edges = 18;
  config.max_weight = 40;
  for (int trial = 0; trial < 25; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    const int k = static_cast<int>(rng.uniform_int(1, 6));
    for (const Algorithm algo : {Algorithm::kGGP, Algorithm::kOGGP}) {
      const Schedule cold =
          solve_kpbs(g, {k, 1, algo, MatchingEngine::kCold}).schedule;
      const Schedule warm =
          solve_kpbs(g, {k, 1, algo, MatchingEngine::kWarm}).schedule;
      expect_identical_schedules(cold, warm);
    }
  }
}

TEST(SolverOptions, WarmAndColdEnginesAgreeThroughOptions) {
  Rng rng(4242);
  RandomGraphConfig config;
  config.max_left = 5;
  config.max_right = 5;
  config.max_edges = 14;
  config.max_weight = 25;
  for (int trial = 0; trial < 25; ++trial) {
    const BipartiteGraph g = random_bipartite(rng, config);
    SolverOptions options{3, 2, Algorithm::kOGGP, MatchingEngine::kWarm};
    const SolveResult warm = solve_kpbs(g, options);
    options.engine = MatchingEngine::kCold;
    const SolveResult cold = solve_kpbs(g, options);
    expect_identical_schedules(warm.schedule, cold.schedule);
    EXPECT_DOUBLE_EQ(warm.evaluation_ratio, cold.evaluation_ratio);
  }
}

TEST(SolverOptions, AlgorithmParserCoversTheCliVocabulary) {
  EXPECT_EQ(parse_algorithm("ggp"), Algorithm::kGGP);
  EXPECT_EQ(parse_algorithm("GGP"), Algorithm::kGGP);
  EXPECT_EQ(parse_algorithm("oggp"), Algorithm::kOGGP);
  EXPECT_EQ(parse_algorithm("OGGP"), Algorithm::kOGGP);
  EXPECT_EQ(parse_algorithm("ggp-mw"), Algorithm::kGGPMaxWeight);
  EXPECT_THROW(parse_algorithm(""), Error);
  EXPECT_THROW(parse_algorithm("simulated-annealing"), Error);
}

TEST(SolverOptions, EngineParserRoundTripsNames) {
  EXPECT_EQ(parse_matching_engine("cold"), MatchingEngine::kCold);
  EXPECT_EQ(parse_matching_engine("warm"), MatchingEngine::kWarm);
  for (const MatchingEngine e : {MatchingEngine::kCold, MatchingEngine::kWarm}) {
    EXPECT_EQ(parse_matching_engine(engine_name(e)), e);
  }
  EXPECT_THROW(parse_matching_engine("lukewarm"), Error);
}

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(SolverOptions, FlagsFallBackToCallerDefaults) {
  Flags flags = make_flags({});
  const SolverOptions defaults{4, 2, Algorithm::kGGP, MatchingEngine::kCold};
  const SolverOptions parsed = solver_options_from_flags(flags, defaults);
  EXPECT_EQ(parsed.k, 4);
  EXPECT_EQ(parsed.beta, 2);
  EXPECT_EQ(parsed.algorithm, Algorithm::kGGP);
  EXPECT_EQ(parsed.engine, MatchingEngine::kCold);
}

TEST(SolverOptions, FlagsOverrideEveryField) {
  Flags flags = make_flags(
      {"--k=7", "--beta=5", "--algo=ggp-mw", "--engine=warm"});
  const SolverOptions parsed = solver_options_from_flags(
      flags, SolverOptions{1, 1, Algorithm::kGGP, MatchingEngine::kCold});
  EXPECT_EQ(parsed.k, 7);
  EXPECT_EQ(parsed.beta, 5);
  EXPECT_EQ(parsed.algorithm, Algorithm::kGGPMaxWeight);
  EXPECT_EQ(parsed.engine, MatchingEngine::kWarm);
}

TEST(SolverOptions, FlagsRejectUnknownAlgorithm) {
  Flags flags = make_flags({"--algo=quantum"});
  EXPECT_THROW(solver_options_from_flags(flags), Error);
}

}  // namespace
}  // namespace redist
